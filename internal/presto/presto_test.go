package presto

import (
	"math"
	"math/rand"
	"testing"

	"mint/internal/mackey"
	"mint/internal/temporal"
	"mint/internal/testutil"
)

func TestConfigValidation(t *testing.T) {
	g := temporal.MustNewGraph([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}})
	m := temporal.M1(10)
	if _, err := Estimate(g, m, Config{Windows: 0, C: 1.25}); err == nil {
		t.Error("Windows=0 accepted")
	}
	if _, err := Estimate(g, m, Config{Windows: 4, C: 0.5}); err == nil {
		t.Error("C<1 accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Estimate(temporal.MustNewGraph(nil), temporal.M1(10), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 {
		t.Fatalf("estimate = %v", res.Estimate)
	}
}

func TestZeroWhenNoMotifs(t *testing.T) {
	// Edges far apart in time: no δ window contains a full motif.
	g := temporal.MustNewGraph([]temporal.Edge{
		{Src: 0, Dst: 1, Time: 0},
		{Src: 1, Dst: 2, Time: 1_000_000},
		{Src: 2, Dst: 0, Time: 2_000_000},
	})
	res, err := Estimate(g, temporal.M1(10), Config{Windows: 50, C: 1.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate != 0 || res.OccurrencesSeen != 0 {
		t.Fatalf("estimate = %v, occurrences = %d", res.Estimate, res.OccurrencesSeen)
	}
}

// TestUnbiasedness checks that the estimator converges to the exact count:
// with many windows the mean relative error must be small, and mostly
// within 10% — the accuracy regime the paper cites for PRESTO (§VIII-A).
func TestUnbiasedness(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// A dense bursty graph with a healthy motif count.
	var edges []temporal.Edge
	ts := temporal.Timestamp(0)
	for i := 0; i < 600; i++ {
		ts += temporal.Timestamp(1 + rng.Intn(6))
		edges = append(edges, temporal.Edge{
			Src:  temporal.NodeID(rng.Intn(8)),
			Dst:  temporal.NodeID(rng.Intn(8)),
			Time: ts,
		})
	}
	g := temporal.MustNewGraph(edges)
	m := temporal.M1(60)
	exact := float64(mackey.Mine(g, m, mackey.Options{}).Matches)
	if exact < 20 {
		t.Fatalf("test graph too sparse: exact = %v", exact)
	}
	res, err := Estimate(g, m, Config{Windows: 4000, C: 1.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(res.Estimate-exact) / exact
	if relErr > 0.15 {
		t.Fatalf("estimate %v vs exact %v: rel err %.3f", res.Estimate, exact, relErr)
	}
}

// TestSamplingBoundsWork: PRESTO's point is scalability — the edges
// processed across windows must be far below windows × |E|.
func TestSamplingBoundsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := testutil.RandomGraph(rng, 40, 4000, 1_000_000)
	m := temporal.M1(500)
	cfg := Config{Windows: 20, C: 1.25, Seed: 2}
	res, err := Estimate(g, m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := int64(cfg.Windows) * int64(g.NumEdges())
	if res.EdgesProcessed >= full/10 {
		t.Fatalf("processed %d edges; sampling saved < 10× vs %d", res.EdgesProcessed, full)
	}
	if res.WindowsRun != cfg.Windows {
		t.Fatalf("windows run = %d, want %d", res.WindowsRun, cfg.Windows)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := testutil.RandomGraph(rng, 10, 300, 10_000)
	m := temporal.M2(500)
	a, err := Estimate(g, m, Config{Windows: 16, C: 1.25, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Estimate(g, m, Config{Windows: 16, C: 1.25, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate != b.Estimate {
		t.Fatalf("same seed, different estimates: %v vs %v", a.Estimate, b.Estimate)
	}
	c, err := Estimate(g, m, Config{Windows: 16, C: 1.25, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimate == c.Estimate && a.Estimate != 0 {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}
