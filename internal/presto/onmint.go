package presto

import (
	"fmt"

	hw "mint/internal/mint"
	"mint/internal/temporal"
)

// SimSummary aggregates the modeled hardware cost of running the sampler's
// exact-mining subroutine on the Mint accelerator.
type SimSummary struct {
	// Seconds is total modeled accelerator time across all windows.
	Seconds float64
	// Cycles is total modeled cycles.
	Cycles int64
	// MemTrafficBytes is total modeled DRAM traffic.
	MemTrafficBytes int64
}

// EstimateOnMint runs the PRESTO-A estimator with the per-window exact
// mining executed on the simulated Mint accelerator instead of the
// software miner — the paper's observation that "Mint is also directly
// applicable to accelerate approximate mining algorithms" (§II-C), since
// PRESTO calls the exact algorithm as a subroutine on each sampled window.
// The returned estimate is identical in distribution to Estimate's (same
// sampling, same exact counts per window); the summary reports the modeled
// hardware cost.
func EstimateOnMint(g *temporal.Graph, m *temporal.Motif, cfg Config, simCfg hw.Config) (Result, SimSummary, error) {
	if cfg.Windows <= 0 {
		return Result{}, SimSummary{}, fmt.Errorf("presto: Windows must be positive, got %d", cfg.Windows)
	}
	if cfg.C < 1 {
		return Result{}, SimSummary{}, fmt.Errorf("presto: C must be ≥ 1, got %v", cfg.C)
	}
	res := Result{}
	sum := SimSummary{}
	if g.NumEdges() == 0 {
		return res, sum, nil
	}
	tMin := g.Edges[0].Time
	tMax := g.Edges[g.NumEdges()-1].Time
	L := temporal.Timestamp(cfg.C * float64(m.Delta))
	if L < m.Delta {
		L = m.Delta
	}
	W := float64(tMax-tMin) + float64(L)

	rng := newSampler(cfg.Seed)
	var estimate float64
	for w := 0; w < cfg.Windows; w++ {
		start := tMin - L + temporal.Timestamp(rng.Float64()*W)
		sub := window(g, start, start+L)
		res.EdgesProcessed += int64(sub.NumEdges())
		res.WindowsRun++
		if sub.NumEdges() == 0 {
			continue
		}
		var spans []temporal.Timestamp
		wcfg := simCfg
		wcfg.Probe = func(edges []int32) {
			first := sub.Edges[edges[0]].Time
			last := sub.Edges[edges[len(edges)-1]].Time
			spans = append(spans, last-first)
		}
		simRes, err := hw.Simulate(sub, m, wcfg)
		if err != nil {
			return Result{}, SimSummary{}, err
		}
		sum.Seconds += simRes.Seconds
		sum.Cycles += simRes.Cycles
		sum.MemTrafficBytes += simRes.MemTrafficBytes
		for _, dur := range spans {
			p := (float64(L) - float64(dur)) / W
			if p <= 0 {
				p = 1 / W
			}
			estimate += 1 / p
			res.OccurrencesSeen++
		}
	}
	res.Estimate = estimate / float64(cfg.Windows)
	return res, sum, nil
}
