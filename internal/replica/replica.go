// Package replica implements WAL shipping between mintd processes: a
// hot-standby follower pulls framed WAL records from its primary over
// the existing HTTP/JSON substrate (long-poll), appends them verbatim to
// its OWN edgelog — so the follower is itself crash-safe and re-follows
// after SIGKILL from its local log position — and continuously replays
// them into a live mint.Stream.
//
// Catch-up is verified, never assumed: whenever the follower's applied
// sequence matches the primary's, the two streams' edge fingerprints are
// compared, and only a match flips the follower to caught-up. A mismatch
// at equal sequence means the histories diverged — the follower halts in
// a loud terminal `diverged` state rather than serve a guessed graph.
//
// Epochs fence deposed primaries: every promotion appends a durable
// epoch record that ships like any other, every pull request carries the
// follower's current epoch, and a source that sees a NEWER epoch than
// its own knows it was deposed — it must fence itself and refuse both
// appends and shipping. A follower whose pull is rejected for carrying
// the newer epoch (409) stops following that source terminally
// (`stale_source`): the old primary has nothing trustworthy to ship.
package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"mint"
	"mint/internal/edgelog"
	"mint/internal/obs"
	"mint/internal/runctl"
	"mint/internal/temporal"
)

// Follower states, in Status.State.
const (
	StateSyncing     = "syncing"      // pulling, not yet fingerprint-verified
	StateCaughtUp    = "caught_up"    // applied seq == source seq, fingerprints match
	StateDiverged    = "diverged"     // fingerprint mismatch at equal seq — terminal
	StateStaleSource = "stale_source" // source's epoch is older than ours — terminal
	StateStopped     = "stopped"      // Run returned (ctx cancel or promotion)
)

// Wire shapes ------------------------------------------------------------

// PullRequest asks a source for WAL records from FromSeq on. Epoch is
// the puller's current epoch: a source seeing an epoch newer than its
// own has been deposed and must fence itself (409 to this request).
type PullRequest struct {
	Dataset string `json:"dataset"`
	FromSeq uint64 `json:"from_seq"`
	Max     int    `json:"max,omitempty"`
	Epoch   uint64 `json:"epoch"`
	// WaitMS long-polls: a source with nothing at FromSeq holds the
	// request up to this long waiting for new records.
	WaitMS int64 `json:"wait_ms,omitempty"`
}

// WireRecord is one WAL record in transit.
type WireRecord struct {
	Seq       uint64              `json:"seq"`
	Kind      uint8               `json:"kind"`
	ClientID  string              `json:"client_id,omitempty"`
	ClientSeq uint64              `json:"client_seq,omitempty"`
	Edges     []temporal.Edge     `json:"edges,omitempty"`
	Epoch     uint64              `json:"epoch,omitempty"`
	Standing  *edgelog.StandingOp `json:"standing,omitempty"`
}

// ToWire converts a log record for shipping.
func ToWire(r edgelog.Record) WireRecord {
	return WireRecord{Seq: r.Seq, Kind: r.Kind, ClientID: r.ClientID,
		ClientSeq: r.ClientSeq, Edges: r.Edges, Epoch: r.Epoch, Standing: r.Standing}
}

// Record converts back to a log record.
func (w WireRecord) Record() edgelog.Record {
	return edgelog.Record{Seq: w.Seq, Kind: w.Kind, ClientID: w.ClientID,
		ClientSeq: w.ClientSeq, Edges: w.Edges, Epoch: w.Epoch, Standing: w.Standing}
}

// PullResponse carries shipped records plus the source's position, so
// the puller can compute lag and verify catch-up. Seq/Fingerprint are
// the source's applied position at response time; records never extend
// past it.
type PullResponse struct {
	Dataset     string       `json:"dataset"`
	Records     []WireRecord `json:"records"`
	Seq         uint64       `json:"seq"`
	Fingerprint string       `json:"fingerprint"`
	Epoch       uint64       `json:"epoch"`
	// TailBytes is the durable bytes the source holds beyond the last
	// record in this response — the byte lag.
	TailBytes int64 `json:"tail_bytes"`
	// Compacted: FromSeq predates the source's oldest retained segment;
	// the puller must bootstrap from the source's snapshot.
	Compacted bool `json:"compacted,omitempty"`
}

// SnapshotResponse ships the source's on-disk snapshot for bootstrap.
type SnapshotResponse struct {
	Dataset  string            `json:"dataset"`
	Snapshot *edgelog.Snapshot `json:"snapshot"`
}

// Status is the GET /v1/replication/status body (for a primary, only a
// subset of fields is meaningful).
type Status struct {
	Dataset     string `json:"dataset"`
	Role        string `json:"role"` // "primary" | "follower"
	State       string `json:"state"`
	Source      string `json:"source,omitempty"`
	Epoch       uint64 `json:"epoch"`
	AppliedSeq  uint64 `json:"applied_seq"`
	SourceSeq   uint64 `json:"source_seq,omitempty"`
	LagRecords  int64  `json:"lag_records"`
	LagBytes    int64  `json:"lag_bytes"`
	Fingerprint string `json:"fingerprint"`
	CaughtUp    bool   `json:"caught_up"`
	Fenced      bool   `json:"fenced,omitempty"`
	LastError   string `json:"last_error,omitempty"`
}

// Config ------------------------------------------------------------------

// Config wires a Follower.
type Config struct {
	// Source is the primary's base URL (e.g. "http://127.0.0.1:8080").
	Source string
	// Dataset is the live dataset name both sides serve.
	Dataset string
	// Stream is the follower's own durable stream (its own WAL dir).
	Stream *mint.Stream
	// Client is the HTTP client ("" timeouts are fine: long-polls bound
	// themselves via WaitMS; nil means a dedicated default client).
	Client *http.Client
	// MaxBatch caps records per pull (0 = 512).
	MaxBatch int
	// WaitMS is the long-poll hold (0 = 10s).
	WaitMS int64
	// RetryBase/RetryCap shape the pull retry backoff
	// (runctl.Backoff; zeros = 100ms/5s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold consecutive pull failures open the per-connection
	// breaker for BreakerCooldown (0s = threshold 5, cooldown 3s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// OnApply, when non-nil, runs after every applied batch (the server
	// hooks registry invalidation here).
	OnApply func()
	// Obs receives replica.* instruments (nil-safe).
	Obs *obs.Registry
	// Logf, when non-nil, receives loud one-line progress/terminal logs.
	Logf func(format string, args ...any)
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Follower ----------------------------------------------------------------

// Follower pulls WAL records from a source into its own stream. Create
// with New, drive with Run (blocking), inspect with Status.
type Follower struct {
	cfg    Config
	client *http.Client

	mu        sync.Mutex
	state     string
	sourceSeq uint64
	lagBytes  int64
	lastErr   string
}

// New validates cfg and builds a follower (it does not start pulling).
func New(cfg Config) (*Follower, error) {
	if cfg.Source == "" {
		return nil, errors.New("replica: follower needs a source URL")
	}
	if cfg.Stream == nil {
		return nil, errors.New("replica: follower needs a stream")
	}
	cfg.Source = strings.TrimRight(cfg.Source, "/")
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 512
	}
	if cfg.WaitMS <= 0 {
		cfg.WaitMS = 10_000
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 5 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 3 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Follower{cfg: cfg, client: client, state: StateSyncing}, nil
}

// Status reports the follower's current replication state.
func (f *Follower) Status() Status {
	info := f.cfg.Stream.Info()
	f.mu.Lock()
	defer f.mu.Unlock()
	st := Status{
		Dataset:     f.cfg.Dataset,
		Role:        "follower",
		State:       f.state,
		Source:      f.cfg.Source,
		Epoch:       info.Epoch,
		AppliedSeq:  info.Seq,
		SourceSeq:   f.sourceSeq,
		LagBytes:    f.lagBytes,
		Fingerprint: info.Fingerprint,
		CaughtUp:    f.state == StateCaughtUp,
		LastError:   f.lastErr,
	}
	if f.sourceSeq > info.Seq {
		st.LagRecords = int64(f.sourceSeq - info.Seq)
	}
	return st
}

// CaughtUp reports whether the follower is fingerprint-verified current.
func (f *Follower) CaughtUp() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state == StateCaughtUp
}

// Terminal reports whether the follower halted (diverged/stale source).
func (f *Follower) Terminal() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.state == StateDiverged || f.state == StateStaleSource
}

func (f *Follower) setState(state, errDetail string) {
	f.mu.Lock()
	prev := f.state
	f.state = state
	if errDetail != "" {
		f.lastErr = errDetail
	}
	f.mu.Unlock()
	if prev != state {
		f.cfg.Obs.Counter("replica.state." + state).Add(1)
		if state == StateCaughtUp {
			f.cfg.logf("replica: %s caught up with %s", f.cfg.Dataset, f.cfg.Source)
		}
		if state == StateDiverged || state == StateStaleSource {
			f.cfg.logf("replica: %s HALTED (%s): %s", f.cfg.Dataset, state, errDetail)
		}
	}
}

// errTerminal wraps failures that retrying cannot fix.
type errTerminal struct {
	state string
	err   error
}

func (e *errTerminal) Error() string { return e.err.Error() }

// Run pulls until ctx is cancelled or a terminal condition halts the
// follower. It always returns the reason it stopped (ctx.Err() for a
// clean stop).
func (f *Follower) Run(ctx context.Context) error {
	failures := 0
	for {
		if err := ctx.Err(); err != nil {
			f.setState(StateStopped, "")
			return err
		}
		progressed, err := f.pullOnce(ctx)
		if err != nil {
			var term *errTerminal
			if errors.As(err, &term) {
				f.setState(term.state, term.err.Error())
				return term.err
			}
			if ctx.Err() != nil {
				f.setState(StateStopped, "")
				return ctx.Err()
			}
			failures++
			f.mu.Lock()
			f.lastErr = err.Error()
			if f.state == StateCaughtUp {
				f.state = StateSyncing
			}
			f.mu.Unlock()
			f.cfg.Obs.Counter("replica.pull_errors").Add(1)
			delay := runctl.Backoff(failures-1, f.cfg.RetryBase, f.cfg.RetryCap)
			if failures >= f.cfg.BreakerThreshold {
				// Per-connection breaker: the source has failed several
				// pulls in a row; stop hammering it for a cooldown.
				delay = f.cfg.BreakerCooldown
				f.cfg.Obs.Counter("replica.breaker_open").Add(1)
			}
			select {
			case <-ctx.Done():
				f.setState(StateStopped, "")
				return ctx.Err()
			case <-time.After(delay):
			}
			continue
		}
		failures = 0
		_ = progressed
	}
}

// pullOnce performs one pull round-trip and applies what it got. The
// bool reports whether any records were applied.
func (f *Follower) pullOnce(ctx context.Context) (bool, error) {
	info := f.cfg.Stream.Info()
	req := PullRequest{
		Dataset: f.cfg.Dataset,
		FromSeq: info.Seq + 1,
		Max:     f.cfg.MaxBatch,
		Epoch:   info.Epoch,
		WaitMS:  f.cfg.WaitMS,
	}
	if !f.CaughtUp() {
		// While syncing, pull without the long-poll hold: a follower that
		// restarted already at the tip must get the empty at-tip response
		// NOW to fingerprint-verify catch-up, not after WaitMS expires.
		// The hold only exists to keep caught-up followers from busy-
		// polling, so it applies only once caught up.
		req.WaitMS = 0
	}
	resp, status, err := f.post(ctx, "/v1/replication/pull", req)
	if err != nil {
		return false, err
	}
	switch status {
	case http.StatusOK:
	case http.StatusConflict:
		// The source refused our epoch: it is older than us (a deposed
		// primary). Nothing it ships can be trusted — halt loudly.
		return false, &errTerminal{state: StateStaleSource,
			err: fmt.Errorf("replica: source %s rejected pull with 409: it is behind our epoch %d", f.cfg.Source, info.Epoch)}
	default:
		return false, fmt.Errorf("replica: pull from %s: unexpected status %d", f.cfg.Source, status)
	}

	var pr PullResponse
	if err := json.Unmarshal(resp, &pr); err != nil {
		return false, fmt.Errorf("replica: decoding pull response: %w", err)
	}

	if pr.Compacted {
		if err := f.bootstrap(ctx); err != nil {
			return false, err
		}
		return true, nil
	}

	applied := 0
	for _, wr := range pr.Records {
		if err := f.cfg.Stream.ApplyReplicated(wr.Record()); err != nil {
			// A seq mismatch (or refused payload) means our history and
			// the source's no longer line up. Terminal.
			return applied > 0, &errTerminal{state: StateDiverged,
				err: fmt.Errorf("replica: applying record %d from %s: %w", wr.Seq, f.cfg.Source, err)}
		}
		applied++
	}
	if applied > 0 {
		f.cfg.Obs.Counter("replica.applied_records").Add(int64(applied))
		if f.cfg.OnApply != nil {
			f.cfg.OnApply()
		}
	}

	cur := f.cfg.Stream.Info()
	f.mu.Lock()
	f.sourceSeq = pr.Seq
	f.lagBytes = pr.TailBytes
	f.mu.Unlock()
	f.cfg.Obs.Gauge("replica.lag_bytes").Set(pr.TailBytes)
	if pr.Seq >= cur.Seq {
		f.cfg.Obs.Gauge("replica.lag_records").Set(int64(pr.Seq - cur.Seq))
	}

	if pr.Seq == cur.Seq {
		// Position matches: the fingerprints must too. This is the
		// checkpoint-style verification that makes "caught up" a claim
		// about content, not just sequence numbers.
		if pr.Fingerprint != cur.Fingerprint {
			return applied > 0, &errTerminal{state: StateDiverged,
				err: fmt.Errorf("replica: fingerprint mismatch at seq %d: source %s has %s, local %s",
					cur.Seq, f.cfg.Source, pr.Fingerprint, cur.Fingerprint)}
		}
		if !f.CaughtUp() {
			// Fold standing counts once on the transition: replication
			// apply skips per-record integration, so restored queries
			// seed here.
			if err := f.cfg.Stream.Refresh(ctx); err != nil {
				return applied > 0, fmt.Errorf("replica: refreshing standing counts at catch-up: %w", err)
			}
		}
		f.setState(StateCaughtUp, "")
	} else {
		f.setState(StateSyncing, "")
	}
	return applied > 0, nil
}

// bootstrap installs the source's snapshot when our next record was
// compacted away at the source. Only an empty local log accepts this;
// anything else is divergence, surfaced by InstallSnapshot's refusal.
func (f *Follower) bootstrap(ctx context.Context) error {
	f.cfg.logf("replica: %s bootstrap: source %s compacted our position; installing snapshot", f.cfg.Dataset, f.cfg.Source)
	body, status, err := f.get(ctx, "/v1/replication/snapshot?dataset="+f.cfg.Dataset)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("replica: snapshot fetch from %s: unexpected status %d", f.cfg.Source, status)
	}
	var sr SnapshotResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return fmt.Errorf("replica: decoding snapshot response: %w", err)
	}
	if sr.Snapshot == nil {
		return fmt.Errorf("replica: source %s reported compaction but has no snapshot", f.cfg.Source)
	}
	if err := f.cfg.Stream.InstallSnapshot(sr.Snapshot); err != nil {
		return &errTerminal{state: StateDiverged,
			err: fmt.Errorf("replica: installing snapshot from %s: %w", f.cfg.Source, err)}
	}
	f.cfg.Obs.Counter("replica.snapshot_bootstraps").Add(1)
	if f.cfg.OnApply != nil {
		f.cfg.OnApply()
	}
	return nil
}

func (f *Follower) post(ctx context.Context, path string, body any) ([]byte, int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.cfg.Source+path, bytes.NewReader(payload))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return f.do(req)
}

func (f *Follower) get(ctx context.Context, path string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Source+path, nil)
	if err != nil {
		return nil, 0, err
	}
	return f.do(req)
}

func (f *Follower) do(req *http.Request) ([]byte, int, error) {
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<30))
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return data, resp.StatusCode, nil
}
