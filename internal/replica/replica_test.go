package replica_test

// Follower tests against a real server.Server primary hosted in
// httptest: catch-up with fingerprint verification, epoch fencing
// (stale source), snapshot bootstrap after compaction, and divergence
// refusal.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mint"
	"mint/internal/replica"
	"mint/internal/runctl"
	"mint/internal/server"
)

func newPrimary(t *testing.T, mutate func(*server.Config)) (*server.Server, *httptest.Server) {
	t.Helper()
	cfg := server.Config{
		Caps:   runctl.Caps{DefaultTimeout: 10 * time.Second, MaxTimeout: 30 * time.Second},
		Ingest: server.IngestConfig{Dir: t.TempDir(), Dataset: "live", SnapshotEvery: -1},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := server.New(cfg)
	<-s.LiveReady()
	if _, err := s.IngestRecovery(); err != nil {
		t.Fatalf("primary ingest open: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, in any, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		_ = json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

func ingestBatch(t *testing.T, url string, seq uint64, base int, n int) {
	t.Helper()
	req := server.IngestRequest{ClientID: "src", ClientSeq: seq}
	for i := 0; i < n; i++ {
		req.Edges = append(req.Edges, server.IngestEdge{
			Src: int64(base+i) % 31, Dst: int64(base+i+1) % 29, Time: int64(base+i) * 10,
		})
	}
	if code := postJSON(t, url+"/v1/edges", req, nil); code != http.StatusOK {
		t.Fatalf("ingest batch %d: status %d", seq, code)
	}
}

func newFollowerStream(t *testing.T) *mint.Stream {
	t.Helper()
	st, _, err := mint.OpenStream(t.TempDir(), mint.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// runFollower starts f.Run in a goroutine and returns a cancel+wait.
func runFollower(t *testing.T, f *replica.Follower) (context.CancelFunc, chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	stopped := make(chan struct{})
	go func() { done <- f.Run(ctx); close(stopped) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-stopped:
		case <-time.After(5 * time.Second):
			t.Error("follower did not stop")
		}
	})
	return cancel, done
}

func waitCaughtUp(t *testing.T, f *replica.Follower, wantSeq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := f.Status()
		if st.CaughtUp && st.AppliedSeq >= wantSeq {
			return
		}
		if f.Terminal() {
			t.Fatalf("follower halted while waiting for catch-up: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never caught up to seq %d: %+v", wantSeq, f.Status())
}

func TestFollowerCatchUpVerified(t *testing.T) {
	srv, ts := newPrimary(t, nil)
	for i := 0; i < 5; i++ {
		ingestBatch(t, ts.URL, uint64(i+1), i*8, 8)
	}

	st := newFollowerStream(t)
	f, err := replica.New(replica.Config{
		Source: ts.URL, Dataset: "live", Stream: st, WaitMS: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	runFollower(t, f)
	waitCaughtUp(t, f, 5)

	status := f.Status()
	live, lerr := srv.LiveStream()
	if lerr != nil {
		t.Fatal(lerr)
	}
	si := live.Info()
	if status.Fingerprint != si.Fingerprint || status.AppliedSeq != si.Seq {
		t.Fatalf("caught-up status %+v vs primary %+v", status, si)
	}
	if status.Role != "follower" || status.LagRecords != 0 {
		t.Fatalf("status fields: %+v", status)
	}

	// New appends while the follower long-polls: it must converge again.
	for i := 5; i < 9; i++ {
		ingestBatch(t, ts.URL, uint64(i+1), i*8, 8)
	}
	waitCaughtUp(t, f, 9)
	if fp := f.Status().Fingerprint; fp != live.Info().Fingerprint {
		t.Fatalf("fingerprint after second catch-up: %s vs %s", fp, live.Info().Fingerprint)
	}
}

func TestFollowerStaleSourceAndFencesPrimary(t *testing.T) {
	_, ts := newPrimary(t, nil)
	ingestBatch(t, ts.URL, 1, 0, 4)

	// The follower has seen epoch 3 (a past promotion). Pulling from a
	// primary still at epoch 1 must depose the primary (it fences) and
	// halt the follower terminally: the old primary ships nothing.
	st := newFollowerStream(t)
	if err := st.BumpEpoch(3); err != nil {
		t.Fatal(err)
	}
	f, err := replica.New(replica.Config{Source: ts.URL, Dataset: "live", Stream: st, WaitMS: 100})
	if err != nil {
		t.Fatal(err)
	}
	_, done := runFollower(t, f)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil for a terminal halt")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not halt on stale source")
	}
	if got := f.Status().State; got != replica.StateStaleSource {
		t.Fatalf("state = %q, want %q", got, replica.StateStaleSource)
	}

	// The deposed primary must now refuse writes loudly.
	req := server.IngestRequest{ClientID: "src", ClientSeq: 2,
		Edges: []server.IngestEdge{{Src: 1, Dst: 2, Time: 99}}}
	if code := postJSON(t, ts.URL+"/v1/edges", req, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("fenced primary answered ingest with %d, want 503", code)
	}
}

func TestFollowerSnapshotBootstrap(t *testing.T) {
	// SnapshotEvery: 3 → the primary compacts its early records away, so
	// a fresh follower's FromSeq=1 pull answers Compacted and the
	// follower must bootstrap from the snapshot.
	srv, ts := newPrimary(t, func(cfg *server.Config) {
		cfg.Ingest.SnapshotEvery = 3
	})
	for i := 0; i < 7; i++ {
		ingestBatch(t, ts.URL, uint64(i+1), i*6, 6)
	}
	live, err := srv.LiveStream()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, rerr := live.ReadRecords(1, 0); rerr == nil {
		t.Skip("primary did not compact; bootstrap path not reachable")
	}

	st := newFollowerStream(t)
	f, ferr := replica.New(replica.Config{Source: ts.URL, Dataset: "live", Stream: st, WaitMS: 200})
	if ferr != nil {
		t.Fatal(ferr)
	}
	runFollower(t, f)
	waitCaughtUp(t, f, live.Info().Seq)
	if fp := f.Status().Fingerprint; fp != live.Info().Fingerprint {
		t.Fatalf("bootstrap fingerprint %s != primary %s", fp, live.Info().Fingerprint)
	}
}

func TestFollowerDivergedIsTerminal(t *testing.T) {
	_, ts := newPrimary(t, nil)
	ingestBatch(t, ts.URL, 1, 0, 4)
	ingestBatch(t, ts.URL, 2, 4, 4)

	// The follower already wrote its OWN first record — a different
	// history. Applying the primary's tail lines the seqs up, and the
	// fingerprint check at equal seq must then refuse loudly.
	st := newFollowerStream(t)
	if _, err := st.Append(context.Background(), "other", 1,
		[]mint.Edge{{Src: 9, Dst: 8, Time: 5}}); err != nil {
		t.Fatal(err)
	}
	f, err := replica.New(replica.Config{Source: ts.URL, Dataset: "live", Stream: st, WaitMS: 100})
	if err != nil {
		t.Fatal(err)
	}
	_, done := runFollower(t, f)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Run returned nil for divergence")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not halt on divergence")
	}
	if got := f.Status().State; got != replica.StateDiverged {
		t.Fatalf("state = %q, want %q", got, replica.StateDiverged)
	}
	if !f.Terminal() {
		t.Fatal("diverged follower not terminal")
	}
}
