// Package testutil provides deterministic random temporal graphs and
// motifs for the cross-validation property tests that anchor every miner
// in this repository to the brute-force oracle.
package testutil

import (
	"math/rand"

	"mint/internal/temporal"
)

// RandomGraph builds a random temporal graph with n nodes and m edges.
// Timestamps are drawn from [0, span); multiple edges between the same
// pair and (rarely) self-loops are allowed, exercising the miners'
// rejection paths.
func RandomGraph(rng *rand.Rand, n, m int, span int64) *temporal.Graph {
	edges := make([]temporal.Edge, m)
	for i := range edges {
		src := temporal.NodeID(rng.Intn(n))
		dst := temporal.NodeID(rng.Intn(n))
		edges[i] = temporal.Edge{Src: src, Dst: dst, Time: temporal.Timestamp(rng.Int63n(span))}
	}
	return temporal.MustNewGraph(edges)
}

// RandomConnectedMotif builds a random motif with the given edge count and
// δ whose edge sequence keeps a connected prefix (each edge after the
// first shares at least one node with an earlier edge) — the common case
// in practice and in the paper's M1–M4.
func RandomConnectedMotif(rng *rand.Rand, edges int, delta temporal.Timestamp) *temporal.Motif {
	maxNodes := edges + 1
	used := 2 // nodes 0 and 1 exist after the first edge
	me := make([]temporal.MotifEdge, 0, edges)
	me = append(me, temporal.MotifEdge{Src: 0, Dst: 1})
	for len(me) < edges {
		// Pick one endpoint among used nodes, the other either used or new.
		a := temporal.NodeID(rng.Intn(used))
		var b temporal.NodeID
		if used < maxNodes && rng.Intn(2) == 0 {
			b = temporal.NodeID(used)
			used++
		} else {
			b = temporal.NodeID(rng.Intn(used))
			if b == a {
				b = (b + 1) % temporal.NodeID(used)
			}
		}
		if a == b {
			continue
		}
		if rng.Intn(2) == 0 {
			a, b = b, a
		}
		me = append(me, temporal.MotifEdge{Src: a, Dst: b})
	}
	return temporal.MustNewMotif("rand", delta, me)
}

// RandomMotif builds a random motif that may have a disconnected edge
// sequence, exercising the "neither endpoint mapped" search path
// (Algorithm 1 line 37).
func RandomMotif(rng *rand.Rand, edges int, delta temporal.Timestamp) *temporal.Motif {
	for {
		nodes := 2 + rng.Intn(edges+1)
		me := make([]temporal.MotifEdge, edges)
		ok := true
		seen := make([]bool, nodes)
		for i := range me {
			a := temporal.NodeID(rng.Intn(nodes))
			b := temporal.NodeID(rng.Intn(nodes))
			if a == b {
				b = (b + 1) % temporal.NodeID(nodes)
			}
			me[i] = temporal.MotifEdge{Src: a, Dst: b}
			seen[a] = true
			seen[b] = true
		}
		for _, s := range seen {
			if !s {
				ok = false // would leave a gap in the node-ID range
			}
		}
		if !ok {
			continue
		}
		m, err := temporal.NewMotif("rand", delta, me)
		if err != nil {
			continue
		}
		return m
	}
}
