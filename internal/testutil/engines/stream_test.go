package engines

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"mint"
	"mint/internal/faultinject"
	"mint/internal/temporal"
	"mint/internal/testutil"
)

// The streaming differential matrix: after ANY sequence of batched
// appends, every registered standing-query count must be bit-identical
// to a cold full mine of the live graph — M1–M4 × 3 δ, with and without
// sliding-window eviction, and under injected faults (where counts may
// go loudly stale but never wrong). This is the incremental-maintenance
// equivalence stream.go claims from the root-window partition property;
// these tests are its enforcement.

// streamScenario is one input of the streaming matrix.
type streamScenario struct {
	name   string
	edges  []temporal.Edge
	deltas []temporal.Timestamp
	window temporal.Timestamp // 0 = no eviction
	batch  int
}

func streamScenarios(short bool) []streamScenario {
	out := []streamScenario{
		{
			name:   "rand-sparse",
			edges:  testutil.RandomGraph(rand.New(rand.NewSource(7)), 24, 160, 4000).Edges,
			deltas: []temporal.Timestamp{150, 600, 2000},
			batch:  13,
		},
	}
	if short {
		return out
	}
	out = append(out,
		streamScenario{
			name:   "rand-dense",
			edges:  testutil.RandomGraph(rand.New(rand.NewSource(13)), 12, 220, 2500).Edges,
			deltas: []temporal.Timestamp{100, 400, 1200},
			batch:  17,
		},
		streamScenario{
			name:   "rand-evicting",
			edges:  testutil.RandomGraph(rand.New(rand.NewSource(29)), 14, 200, 3000).Edges,
			deltas: []temporal.Timestamp{120, 500, 1500},
			window: 900,
			batch:  11,
		},
	)
	return out
}

// shuffleBatches cuts edges into batches and mildly shuffles WITHIN each
// batch, so arrival order disagrees with timestamp order (the tie-break
// and out-of-order paths get exercised) while the batch sequence itself
// stays deterministic.
func shuffleBatches(edges []temporal.Edge, batch int, seed int64) [][]temporal.Edge {
	rng := rand.New(rand.NewSource(seed))
	var out [][]temporal.Edge
	for i := 0; i < len(edges); i += batch {
		end := i + batch
		if end > len(edges) {
			end = len(edges)
		}
		b := append([]temporal.Edge(nil), edges[i:end]...)
		rng.Shuffle(len(b), func(x, y int) { b[x], b[y] = b[y], b[x] })
		out = append(out, b)
	}
	return out
}

// TestDifferentialStreamingCounts drives the full matrix: register
// M1–M4 at three δ each (12 standing queries), append the edge stream in
// shuffled batches, and at checkpoints compare every standing count to a
// cold full mine of the live graph. At the end, reopen the WAL directory
// cold and require the replayed graph to count identically — the
// differential gate of the issue.
func TestDifferentialStreamingCounts(t *testing.T) {
	for _, sc := range streamScenarios(testing.Short()) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, _, err := mint.OpenStream(dir, mint.StreamOptions{
				Workers:       2,
				Window:        sc.window,
				SnapshotEvery: 5,
				SegmentBytes:  4096,
			})
			if err != nil {
				t.Fatalf("OpenStream: %v", err)
			}
			defer s.Close()

			type sq struct {
				name  string
				motif *temporal.Motif
			}
			var sqs []sq
			for _, delta := range sc.deltas {
				for _, m := range temporal.EvaluationMotifs(delta) {
					sqs = append(sqs, sq{fmt.Sprintf("%s@%d", m.Name, delta), m})
				}
			}
			for _, q := range sqs {
				if _, err := s.Register(context.Background(), q.name, q.motif); err != nil {
					t.Fatalf("Register %s: %v", q.name, err)
				}
			}

			batches := shuffleBatches(sc.edges, sc.batch, 99)
			check := func(stage string) {
				t.Helper()
				live, err := s.Graph()
				if err != nil {
					t.Fatalf("%s: Graph: %v", stage, err)
				}
				standing := s.Standing()
				byName := map[string]mint.StandingCount{}
				for _, st := range standing {
					byName[st.Name] = st
				}
				for _, q := range sqs {
					st := byName[q.name]
					if st.Stale {
						t.Fatalf("%s: %s went stale without faults: %s", stage, q.name, st.Reason)
					}
					if want := mint.Count(live, q.motif); st.Count != want {
						t.Fatalf("%s: %s standing=%d cold=%d", stage, q.name, st.Count, want)
					}
				}
			}

			for i, b := range batches {
				if _, err := s.Append(context.Background(), "diff", uint64(i+1), b); err != nil {
					t.Fatalf("Append %d: %v", i, err)
				}
				// Checking every batch is O(batches × motifs × mine); thin
				// it out but always check the first few and the last.
				if i < 3 || i == len(batches)-1 || i%7 == 0 {
					check(fmt.Sprintf("batch %d", i))
				}
			}
			check("final")
			finalInfo := s.Info()
			live, _ := s.Graph()
			s.Close()

			// Cold restart: replay the WAL and require bit-identical counts
			// to the pre-restart live graph. Registrations are durable WAL
			// records now, so the board restores (and reseeds) itself — a
			// re-register must refuse as a duplicate, not silently reset.
			s2, rec, err := mint.OpenStream(dir, mint.StreamOptions{
				Workers: 2,
				Window:  sc.window,
			})
			if err != nil {
				t.Fatalf("cold reopen: %v", err)
			}
			defer s2.Close()
			if rec.Truncated {
				t.Fatalf("clean shutdown replayed as truncated: %s", rec.Detail)
			}
			if got := s2.Info(); got.Fingerprint != finalInfo.Fingerprint {
				t.Fatalf("cold fingerprint %s != live %s", got.Fingerprint, finalInfo.Fingerprint)
			}
			restored := map[string]mint.StandingCount{}
			for _, st := range s2.Standing() {
				restored[st.Name] = st
			}
			for _, q := range sqs {
				st, ok := restored[q.name]
				if !ok {
					t.Fatalf("cold reopen lost standing query %s", q.name)
				}
				if st.Stale {
					t.Fatalf("cold-restored %s stale: %s", q.name, st.Reason)
				}
				if want := mint.Count(live, q.motif); st.Count != want {
					t.Fatalf("cold %s = %d, live mine = %d", q.name, st.Count, want)
				}
				if _, err := s2.Register(context.Background(), q.name, q.motif); err == nil {
					t.Fatalf("re-registering restored %s did not refuse", q.name)
				}
			}
		})
	}
}

// TestStreamingStaleNeverWrong floods the integration path with injected
// engine faults: standing counts are then allowed to go STALE (loudly,
// with a reason) but each reported value must still equal the cold count
// of the graph at the seq it claims (StandingCount.Seq) — stale-but-
// right, never fresh-but-wrong. A chaos-free cold reopen then recovers
// exact counts from the same WAL.
func TestStreamingStaleNeverWrong(t *testing.T) {
	edges := testutil.RandomGraph(rand.New(rand.NewSource(17)), 10, 120, 1500).Edges
	plan := faultinject.New(5, 0, 0, 0.35, 0, 0)
	plan.RestrictSites("comine.")
	dir := t.TempDir()
	s, _, err := mint.OpenStream(dir, mint.StreamOptions{Workers: 2, Chaos: plan})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	defer s.Close()

	delta := temporal.Timestamp(400)
	motifs := temporal.EvaluationMotifs(delta)
	registered := map[string]*temporal.Motif{}
	for _, m := range motifs {
		if _, err := s.Register(context.Background(), m.Name, m); err != nil {
			// The register-time mine itself can catch a fault; that is a
			// loud refusal, which is fine — just skip the query.
			continue
		}
		registered[m.Name] = m
	}
	if len(registered) == 0 {
		t.Skip("chaos plan refused every registration; nothing to test")
	}

	// history[seq] = cold count per registered motif of the graph as of
	// that seq, recorded as we go so stale values can be checked against
	// the snapshot they claim.
	history := map[uint64]map[string]int64{}
	record := func(seq uint64) {
		live, err := s.Graph()
		if err != nil {
			t.Fatal(err)
		}
		h := map[string]int64{}
		for name, m := range registered {
			h[name] = mint.Count(live, m)
		}
		history[seq] = h
	}
	// Registrations are durable WAL records now, so each one consumed a
	// sequence number; a query seeded at registration claims that seq.
	// The graph was empty through all of them.
	for seq := uint64(0); seq <= s.Info().Seq; seq++ {
		record(seq)
	}

	sawStale := false
	for i := 0; i < len(edges); i += 15 {
		end := i + 15
		if end > len(edges) {
			end = len(edges)
		}
		res, err := s.Append(context.Background(), "chaos", uint64(i/15+1), edges[i:end])
		if err != nil {
			t.Fatalf("append under comine-restricted chaos must stay durable: %v", err)
		}
		record(res.Seq)
		for _, st := range s.Standing() {
			want, ok := history[st.Seq][st.Name]
			if !ok {
				t.Fatalf("standing %s claims unknown seq %d", st.Name, st.Seq)
			}
			if st.Count != want {
				t.Fatalf("standing %s at seq %d = %d, cold mine of that seq = %d (stale=%v)",
					st.Name, st.Seq, st.Count, want, st.Stale)
			}
			if st.Stale {
				sawStale = true
				if st.Reason == "" {
					t.Fatalf("stale without a reason: %+v", st)
				}
			}
		}
	}
	if !sawStale {
		t.Logf("note: no integration was hit by the plan this seed; soundness still verified")
	}
	live, _ := s.Graph()
	s.Close()

	// Chaos-free recovery from the same WAL: the durably-registered board
	// restores itself and reseeds exact.
	s2, _, err := mint.OpenStream(dir, mint.StreamOptions{Workers: 2})
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	defer s2.Close()
	recovered := map[string]mint.StandingCount{}
	for _, st := range s2.Standing() {
		recovered[st.Name] = st
	}
	for name, m := range registered {
		st, ok := recovered[name]
		if !ok {
			t.Fatalf("clean reopen lost standing query %s", name)
		}
		if st.Stale {
			t.Fatalf("recovered %s stale without chaos: %s", name, st.Reason)
		}
		if want := mint.Count(live, m); st.Count != want {
			t.Fatalf("recovered %s = %d, want %d", name, st.Count, want)
		}
	}
}
