package engines

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"mint/internal/faultinject"
	"mint/internal/mackey"
	"mint/internal/mint"
	"mint/internal/oracle"
	"mint/internal/runctl"
	"mint/internal/task"
	"mint/internal/temporal"
	"mint/internal/testutil"
)

// chaosOutcome is one engine's result under fault injection, normalized
// across the engines' different return shapes.
type chaosOutcome struct {
	matches   int64
	truncated bool
	reason    runctl.Reason
	err       error
	poisoned  int
}

// chaosEngine is one engine wired for fault injection: it runs under a
// fresh controller carrying the plan, so every hook site in its path is
// live.
type chaosEngine struct {
	name string
	run  func(g *temporal.Graph, m *temporal.Motif, plan *faultinject.Plan) chaosOutcome
}

func chaosCtl(plan *faultinject.Plan) *runctl.Controller {
	ctl := runctl.New(context.Background(), runctl.Budget{})
	ctl.SetFaultPlan(plan)
	return ctl
}

// chaosEngines spans every layer that carries injection hooks: the
// sequential reference miner (per-root site), the partitioned parallel
// miner (per-chunk site), the supervised miner (per-chunk with retry and
// quarantine), both task runtimes (per-root and per-queue-task sites),
// and the cycle-level simulator (per-poll site).
func chaosEngines() []chaosEngine {
	return []chaosEngine{
		{"mackey/sequential", func(g *temporal.Graph, m *temporal.Motif, plan *faultinject.Plan) chaosOutcome {
			res := mackey.Mine(g, m, mackey.Options{Ctl: chaosCtl(plan)})
			return chaosOutcome{matches: res.Matches, truncated: res.Truncated, reason: res.StopReason}
		}},
		{"mackey/parallel-4", func(g *temporal.Graph, m *temporal.Motif, plan *faultinject.Plan) chaosOutcome {
			res, err := mackey.MineParallelCtx(context.Background(), g, m,
				mackey.Options{Workers: 4, Ctl: chaosCtl(plan)}, runctl.Budget{})
			return chaosOutcome{matches: res.Matches, truncated: res.Truncated, reason: res.StopReason, err: err}
		}},
		{"mackey/supervised-4", func(g *temporal.Graph, m *temporal.Motif, plan *faultinject.Plan) chaosOutcome {
			sup, err := mackey.MineParallelSupervised(context.Background(), g, m,
				mackey.Options{Workers: 4, Ctl: chaosCtl(plan)}, runctl.Budget{},
				mackey.SupervisorOptions{MaxAttempts: 4, BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond})
			return chaosOutcome{matches: sup.Matches, truncated: sup.Truncated,
				reason: sup.StopReason, err: err, poisoned: len(sup.Poisoned)}
		}},
		{"task/run-4", func(g *temporal.Graph, m *temporal.Motif, plan *faultinject.Plan) chaosOutcome {
			res, err := task.RunCtl(g, m, 4, chaosCtl(plan))
			return chaosOutcome{matches: res.Matches, truncated: res.Truncated, reason: res.StopReason, err: err}
		}},
		{"task/queue-4", func(g *temporal.Graph, m *temporal.Motif, plan *faultinject.Plan) chaosOutcome {
			res, err := task.RunQueueCtl(g, m, 4, 8, chaosCtl(plan))
			return chaosOutcome{matches: res.Matches, truncated: res.Truncated, reason: res.StopReason, err: err}
		}},
		{"mint/sim", func(g *temporal.Graph, m *temporal.Motif, plan *faultinject.Plan) chaosOutcome {
			cfg := mint.DefaultConfig()
			cfg.PEs = 8
			res, err := mint.SimulateCtl(g, m, cfg, chaosCtl(plan))
			return chaosOutcome{matches: res.Matches, truncated: res.Truncated, reason: res.StopReason, err: err}
		}},
	}
}

// TestChaosDifferentialSoundness is the chaos soundness contract from the
// fault-tolerance design: under a seeded rate-based fault plan, every
// engine must either produce the exact count or degrade *loudly* — an
// error, or Truncated with a stop reason and a partial count that never
// exceeds the oracle. A silently wrong count (untruncated, errorless, yet
// != oracle) fails the test. The CI chaos job runs this under -race with
// a fixed seed set, so the recover/stop paths themselves are also proven
// race-free.
func TestChaosDifferentialSoundness(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 24, 160, 4000)
	motifs := temporal.EvaluationMotifs(600)[:2]
	seeds := []int64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = seeds[:2]
	}

	totalFired := int64(0)
	for _, seed := range seeds {
		// Mixed-kind plan: crashes, stalls, clean errors, and dropped work,
		// each rare enough that some runs complete exactly. Delays are kept
		// short — they model stalls, not hangs, and must not slow the test.
		plan := faultinject.New(seed, 0.03, 0.02, 0.03, 0.02, 200*time.Microsecond)
		for _, m := range motifs {
			want := oracle.Count(g, m)
			for _, eng := range chaosEngines() {
				out := eng.run(g, m, plan)
				switch {
				case out.err != nil:
					// Loud failure: acceptable. The error must identify the
					// injection, not be some unrelated breakage.
					if !faultinject.IsInjected(out.err) {
						t.Errorf("seed %d %s/%s: non-injected error under chaos: %v",
							seed, eng.name, m.Name, out.err)
					}
				case out.truncated:
					if out.reason == runctl.NotStopped {
						t.Errorf("seed %d %s/%s: truncated without a stop reason",
							seed, eng.name, m.Name)
					}
					if out.matches > want {
						t.Errorf("seed %d %s/%s: truncated count %d exceeds oracle %d",
							seed, eng.name, m.Name, out.matches, want)
					}
				default:
					if out.matches != want {
						t.Errorf("seed %d %s/%s: SILENTLY WRONG count %d, oracle %d (no error, not truncated)",
							seed, eng.name, m.Name, out.matches, want)
					}
				}
			}
		}
		for _, n := range plan.Fired() {
			totalFired += n
		}
	}
	if totalFired == 0 {
		t.Fatal("no faults fired across the whole matrix; the chaos plan rates are too low for this workload")
	}
}

// TestChaosSupervisedRecoversCleanErrors pins the recovery guarantee that
// distinguishes the supervised miner from the rest of the table: under
// error-only injection (no crashes, no drops) with retry headroom, the
// supervised run must converge to the exact count with no truncation —
// retries re-roll the fault decision, so a transient error never costs
// correctness, only attempts.
func TestChaosSupervisedRecoversCleanErrors(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 24, 160, 4000)
	m := temporal.EvaluationMotifs(600)[0]
	want := oracle.Count(g, m)
	for _, seed := range []int64{11, 12, 13} {
		plan := faultinject.New(seed, 0, 0, 0.10, 0, time.Millisecond)
		sup, err := mackey.MineParallelSupervised(context.Background(), g, m,
			mackey.Options{Workers: 4, Ctl: chaosCtl(plan)}, runctl.Budget{},
			mackey.SupervisorOptions{MaxAttempts: 6, BackoffBase: time.Millisecond, BackoffCap: 4 * time.Millisecond})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sup.Truncated || len(sup.Poisoned) > 0 {
			t.Fatalf("seed %d: supervised run truncated (poisoned %d) under error-only faults",
				seed, len(sup.Poisoned))
		}
		if sup.Matches != want {
			t.Fatalf("seed %d: supervised count %d, oracle %d", seed, sup.Matches, want)
		}
	}
}
