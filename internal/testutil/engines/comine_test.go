package engines

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mint/internal/comine"
	"mint/internal/faultinject"
	"mint/internal/mackey"
	"mint/internal/runctl"
	"mint/internal/temporal"
	"mint/internal/testutil"
)

// The co-mining differential matrix: one co-mined run over a motif SET
// must be bit-identical, per motif, to independent single-motif runs.
// This is the equivalence the co-miner claims by construction (same
// partial mappings, same scan cases, same δ predicates as the mackey
// traversal, bookkeeping forked only at trie divergence points); these
// tests are the claim's enforcement, run under -race by the CI matrix.

// comineAll co-mines the whole set and returns the per-motif counts in
// input order.
func comineAll(tb testing.TB, g *temporal.Graph, motifs []*temporal.Motif, workers int) []int64 {
	tb.Helper()
	plan, err := comine.PlanSet(motifs)
	if err != nil {
		tb.Fatalf("PlanSet: %v", err)
	}
	res, err := comine.MineCtx(context.Background(), g, plan,
		comine.Options{Workers: workers}, runctl.Budget{})
	if err != nil {
		tb.Fatalf("MineCtx: %v", err)
	}
	counts := make([]int64, len(res.PerMotif))
	for i, pm := range res.PerMotif {
		if pm.Truncated {
			tb.Fatalf("unbudgeted co-mined run truncated (%v)", pm.StopReason)
		}
		counts[i] = pm.Matches
	}
	return counts
}

// soloCounts runs each motif through the single-motif reference miner.
func soloCounts(g *temporal.Graph, motifs []*temporal.Motif) []int64 {
	counts := make([]int64, len(motifs))
	for i, m := range motifs {
		counts[i] = mackey.Mine(g, m, mackey.Options{}).Matches
	}
	return counts
}

// TestDifferentialComineSets co-mines the full {M1..M4} family (plus a
// duplicate and a strict-prefix motif, the planner's sharing-heavy
// shapes) over the differential graph set at three δ values and 1/4/8
// workers, and requires every per-motif count to equal its single-motif
// twin bit for bit.
func TestDifferentialComineSets(t *testing.T) {
	for _, dg := range diffGraphs(t, testing.Short()) {
		for _, delta := range dg.deltas {
			family := temporal.EvaluationMotifs(delta)
			prefix, err := temporal.ParseMotif("prefix", delta, "0->1,1->2")
			if err != nil {
				t.Fatal(err)
			}
			sets := [][]*temporal.Motif{
				family,
				{family[0], family[1], family[0]}, // duplicate motif
				append([]*temporal.Motif{prefix}, family...), // strict prefix of M2/M3
			}
			for si, set := range sets {
				want := soloCounts(dg.g, set)
				for _, workers := range []int{1, 4, 8} {
					got := comineAll(t, dg.g, set, workers)
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("%s/δ=%d set %d workers %d: motif %s co-mined %d, solo %d",
								dg.name, delta, si, workers, set[i].Name, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestDifferentialComineMixedDeltas pins the multi-group path: motifs
// at different δ cannot share a traversal, so the planner must split
// them into δ-groups and each group's counts must still match solo
// runs exactly.
func TestDifferentialComineMixedDeltas(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 24, 160, 4000)
	set := []*temporal.Motif{
		temporal.M1(150), temporal.M2(150),
		temporal.M1(600), temporal.M3(600),
		temporal.M2(2000),
	}
	want := soloCounts(g, set)
	for _, workers := range []int{1, 4} {
		got := comineAll(t, g, set, workers)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers %d: motif %s/δ=%d co-mined %d, solo %d",
					workers, set[i].Name, set[i].Delta, got[i], want[i])
			}
		}
	}
}

// TestDifferentialComineBudgetTruncation runs the co-miner out of node
// budget and requires the truncation to be LOUD per motif: every entry
// of a stopped or never-run group flagged with the shared stop reason,
// partial counts staying exact lower bounds. A budget-starved batch
// that returned unmarked short counts would be silently wrong — the
// one outcome this harness exists to forbid.
func TestDifferentialComineBudgetTruncation(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(13)), 12, 220, 2500)
	set := []*temporal.Motif{
		temporal.M1(400), temporal.M2(400),
		temporal.M1(1200), // second δ-group: must NOT get a fresh budget
	}
	full := soloCounts(g, set)
	plan, err := comine.PlanSet(set)
	if err != nil {
		t.Fatal(err)
	}
	res, err := comine.MineCtx(context.Background(), g, plan,
		comine.Options{Workers: 4}, runctl.Budget{MaxNodes: 1})
	if err != nil {
		t.Fatalf("MineCtx: %v", err)
	}
	if !res.Truncated || res.StopReason != runctl.NodeBudget {
		t.Fatalf("MaxNodes=1 run not truncated as node budget: truncated=%v reason=%v",
			res.Truncated, res.StopReason)
	}
	for i, pm := range res.PerMotif {
		if !pm.Truncated {
			t.Errorf("motif %d (%s/δ=%d): unmarked entry under an exhausted shared budget",
				i, pm.Motif.Name, pm.Motif.Delta)
		}
		if pm.StopReason == runctl.NotStopped {
			t.Errorf("motif %d (%s): truncated without a stop reason", i, pm.Motif.Name)
		}
		if pm.Matches > full[i] {
			t.Errorf("motif %d (%s): partial %d exceeds full count %d",
				i, pm.Motif.Name, pm.Matches, full[i])
		}
	}
}

// comineProperty is one trial of the property test: does a co-mined
// run over this motif set on this graph match per-motif solo runs?
// Returns the index of the first diverging motif, or -1.
func comineProperty(tb testing.TB, g *temporal.Graph, set []*temporal.Motif, workers int) int {
	want := soloCounts(g, set)
	got := comineAll(tb, g, set, workers)
	for i := range want {
		if got[i] != want[i] {
			return i
		}
	}
	return -1
}

// describeSet renders a motif set as the reproducible (spec, δ) list a
// failure report needs.
func describeSet(set []*temporal.Motif) string {
	parts := make([]string, len(set))
	for i, m := range set {
		parts[i] = fmt.Sprintf("{%s δ=%d}", m, m.Delta)
	}
	return strings.Join(parts, " ")
}

// TestDifferentialComineRandomSets is the property test: random motif
// subsets over random graphs, co-mined counts must equal per-motif solo
// counts. On failure it SHRINKS the counterexample — greedily dropping
// motifs while the divergence persists — and prints the minimal
// (graph seed, motif set, δ) triple, so the reproducer is one pasted
// line, not a 6-motif haystack.
func TestDifferentialComineRandomSets(t *testing.T) {
	trials := 12
	if testing.Short() {
		trials = 4
	}
	deltas := []temporal.Timestamp{150, 400, 900, 2000}
	for trial := 0; trial < trials; trial++ {
		graphSeed := int64(100 + trial)
		rng := rand.New(rand.NewSource(graphSeed))
		g := testutil.RandomGraph(rng, 10+rng.Intn(16), 80+rng.Intn(160), 3000)
		setSize := 2 + rng.Intn(5)
		set := make([]*temporal.Motif, setSize)
		for i := range set {
			delta := deltas[rng.Intn(len(deltas))]
			if rng.Intn(2) == 0 {
				set[i] = testutil.RandomConnectedMotif(rng, 2+rng.Intn(3), delta)
			} else {
				set[i] = testutil.RandomMotif(rng, 2+rng.Intn(3), delta)
			}
		}
		workers := 1 + rng.Intn(4)
		if bad := comineProperty(t, g, set, workers); bad >= 0 {
			// Shrink: drop motifs one at a time as long as some motif still
			// diverges; the survivor set is the minimal counterexample.
			shrunk := append([]*temporal.Motif(nil), set...)
			for i := 0; i < len(shrunk) && len(shrunk) > 1; {
				cand := append(append([]*temporal.Motif(nil), shrunk[:i]...), shrunk[i+1:]...)
				if comineProperty(t, g, cand, workers) >= 0 {
					shrunk = cand
					continue
				}
				i++
			}
			t.Fatalf("co-mined counts diverge from solo runs\n"+
				"  reproducer: graph seed %d, workers %d\n"+
				"  motif set:  %s\n"+
				"  shrunk to:  %s",
				graphSeed, workers, describeSet(set), describeSet(shrunk))
		}
	}
}

// TestChaosComineSoundness adds the co-miner to the fault-injection
// soundness matrix: under seeded mixed-kind fault plans firing at the
// "comine.chunk" site, a batch run must either return an identified
// injected error or mark every affected motif Truncated with a reason
// and a count bounded by the oracle. The batch's extra obligation over
// the single-motif engines: soundness must hold for EVERY entry of the
// set, not just an aggregate.
func TestChaosComineSoundness(t *testing.T) {
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 24, 160, 4000)
	set := []*temporal.Motif{
		temporal.M1(600), temporal.M2(600), // one shared group: comine.chunk live
		temporal.M1(2000), // second group, hit only if the first survives
	}
	want := soloCounts(g, set)
	plan, err := comine.PlanSet(set)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	totalFired := int64(0)
	for _, seed := range seeds {
		fp := faultinject.New(seed, 0.05, 0.05, 0.10, 0.05, 0)
		ctl := chaosCtl(fp)
		res, err := comine.MineCtx(context.Background(), g, plan,
			comine.Options{Workers: 4, Ctl: ctl}, runctl.Budget{})
		switch {
		case err != nil:
			if !faultinject.IsInjected(err) && res.StopReason != runctl.FaultInjected {
				t.Errorf("seed %d: non-injected error under chaos: %v", seed, err)
			}
		case res.Truncated:
			if res.StopReason != runctl.FaultInjected && res.StopReason != runctl.Failed {
				t.Errorf("seed %d: chaos truncation with unexpected reason %v", seed, res.StopReason)
			}
		}
		for i, pm := range res.PerMotif {
			switch {
			case pm.Truncated:
				if pm.StopReason == runctl.NotStopped {
					t.Errorf("seed %d motif %d (%s): truncated without a stop reason", seed, i, pm.Motif.Name)
				}
				if pm.Matches > want[i] {
					t.Errorf("seed %d motif %d (%s): truncated count %d exceeds oracle %d",
						seed, i, pm.Motif.Name, pm.Matches, want[i])
				}
			default:
				if pm.Matches != want[i] {
					t.Errorf("seed %d motif %d (%s): SILENTLY WRONG count %d, oracle %d",
						seed, i, pm.Motif.Name, pm.Matches, want[i])
				}
			}
		}
		for _, n := range fp.Fired() {
			totalFired += n
		}
	}
	if totalFired == 0 {
		t.Fatal("no faults fired across the co-mining chaos matrix; rates too low for this workload")
	}
}
