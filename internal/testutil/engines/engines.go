package engines

import (
	"context"
	"fmt"

	"mint/internal/comine"
	"mint/internal/mackey"
	"mint/internal/mint"
	"mint/internal/runctl"
	"mint/internal/task"
	"mint/internal/temporal"
)

// Engine is one named motif-counting implementation under differential
// test. Every engine in this repository — the recursive reference miner,
// the iterative Algorithm 1 port, the memoized and parallel variants, the
// task-centric runtimes, and the Mint simulator's functional layer — must
// produce the exact same count for the same (graph, motif) input; the
// differential harness drives them all from one table and diffs the
// results against the brute-force oracle.
//
// Engines through which the hot-path overhaul routes (pooled worker state,
// window-cached searches, time-partitioned parallel chunking) sit next to
// their pre-overhaul Baseline twins, so any divergence introduced by the
// optimized path is caught by construction, not by luck.
type Engine struct {
	// Name identifies the engine in test output, e.g. "mackey/parallel-4".
	Name string
	// Count returns the exact number of motif instances. Engines without a
	// failure mode return a nil error unconditionally.
	Count func(g *temporal.Graph, m *temporal.Motif) (int64, error)
}

// Engines returns the full engine table. The list deliberately spans every
// axis the hot-path overhaul touched: optimized vs Baseline sequential
// miners, the window-cached iterative miner, memoized runs (which keep the
// legacy scan path), the time-partitioned parallel miner at 1/4/8 workers,
// the synchronous and queue-mediated task runtimes (pooled contexts,
// worker-local caches), and the cycle-level simulator's functional counts.
func Engines() []Engine {
	engines := []Engine{
		{Name: "mackey/reference", Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
			return mackey.Mine(g, m, mackey.Options{}).Matches, nil
		}},
		{Name: "mackey/reference-baseline", Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
			return mackey.Mine(g, m, mackey.Options{Baseline: true}).Matches, nil
		}},
		{Name: "mackey/algorithm1", Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
			return mackey.MineAlgorithm1(g, m, mackey.Options{}).Matches, nil
		}},
		{Name: "mackey/algorithm1-baseline", Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
			return mackey.MineAlgorithm1(g, m, mackey.Options{Baseline: true}).Matches, nil
		}},
		{Name: "mackey/memo", Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
			return mackey.MineMemo(g, m, mackey.Options{}).Matches, nil
		}},
		{Name: "task/queue", Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
			res, err := task.RunQueueCtl(g, m, 4, 8, nil)
			return res.Matches, err
		}},
		{Name: "mint/sim", Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
			cfg := mint.DefaultConfig()
			cfg.PEs = 8 // small array keeps the cycle-level run fast
			res, err := mint.Simulate(g, m, cfg)
			return res.Matches, err
		}},
	}
	for _, workers := range []int{1, 4, 8} {
		engines = append(engines,
			Engine{Name: fmt.Sprintf("mackey/parallel-%d", workers), Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
				return mackey.MineParallel(g, m, mackey.Options{Workers: workers}).Matches, nil
			}},
			Engine{Name: fmt.Sprintf("task/run-%d", workers), Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
				res, err := task.RunCtl(g, m, workers, nil)
				return res.Matches, err
			}},
		)
	}
	engines = append(engines, Engine{Name: "mackey/parallel-memo-8", Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
		return mackey.MineParallelMemo(g, m, mackey.Options{Workers: 8}).Matches, nil
	}})
	// The co-miner as a single-motif engine: a one-motif plan exercises
	// planning plus the singleton-devolution path end to end. Motif SETS
	// get their own differential matrix (comine_test.go) because the
	// Engine signature is per-motif.
	for _, workers := range []int{1, 4} {
		engines = append(engines, Engine{Name: fmt.Sprintf("comine/solo-%d", workers),
			Count: func(g *temporal.Graph, m *temporal.Motif) (int64, error) {
				plan, err := comine.PlanSet([]*temporal.Motif{m})
				if err != nil {
					return 0, err
				}
				res, err := comine.MineCtx(context.Background(), g, plan,
					comine.Options{Workers: workers}, runctl.Budget{})
				if err != nil {
					return 0, err
				}
				return res.PerMotif[0].Matches, nil
			}})
	}
	return engines
}
