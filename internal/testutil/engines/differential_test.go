package engines

import (
	"math/rand"
	"testing"

	"mint/internal/datasets"
	"mint/internal/oracle"
	"mint/internal/temporal"
	"mint/internal/testutil"
)

// diffGraph is one input graph of the differential matrix.
type diffGraph struct {
	name string
	g    *temporal.Graph
	// deltas are the three time windows exercised on this graph, chosen
	// relative to its time span so each motif sees a sparse, a moderate,
	// and a wide window.
	deltas []temporal.Timestamp
}

// diffGraphs builds the input set: two seeded random graphs of different
// density plus a scaled-down seeded dataset from the Table I generator
// (the same generator cmd/gengraph drives), so the harness sees both
// uniform random structure and the hub-heavy, bursty structure the paper's
// workloads have.
func diffGraphs(t testing.TB, short bool) []diffGraph {
	t.Helper()
	graphs := []diffGraph{
		{
			name:   "rand-sparse",
			g:      testutil.RandomGraph(rand.New(rand.NewSource(7)), 24, 160, 4000),
			deltas: []temporal.Timestamp{150, 600, 2000},
		},
	}
	if short {
		return graphs
	}
	graphs = append(graphs, diffGraph{
		name:   "rand-dense",
		g:      testutil.RandomGraph(rand.New(rand.NewSource(13)), 12, 220, 2500),
		deltas: []temporal.Timestamp{100, 400, 1200},
	})
	spec, err := datasets.ByName("email-eu")
	if err != nil {
		t.Fatalf("datasets.ByName: %v", err)
	}
	g, err := datasets.GenerateWithNodeScale(spec, 0.001, 0.05)
	if err != nil {
		t.Fatalf("datasets.GenerateWithNodeScale: %v", err)
	}
	graphs = append(graphs, diffGraph{
		name: "email-eu-sample",
		g:    g,
		// The generator preserves the full dataset's edges-per-δ density,
		// so hour-scale windows are already rich here.
		deltas: []temporal.Timestamp{600, temporal.DeltaHour, 3 * temporal.DeltaHour},
	})
	return graphs
}

// TestDifferentialEngines runs every registered engine over the full
// (graph × motif × δ) matrix and requires each count to equal the
// brute-force oracle's. This is the cross-engine guard for the hot-path
// overhaul: the pooled/cached/partitioned implementations and their
// Baseline twins must be indistinguishable by counts on every input. The
// CI race job runs this test under -race, which additionally proves the
// worker-local window caches and pooled contexts are free of data races at
// 1, 4, and 8 workers.
func TestDifferentialEngines(t *testing.T) {
	engines := Engines()
	for _, dg := range diffGraphs(t, testing.Short()) {
		for _, delta := range dg.deltas {
			for _, m := range temporal.EvaluationMotifs(delta) {
				want := oracle.Count(dg.g, m)
				for _, eng := range engines {
					got, err := eng.Count(dg.g, m)
					if err != nil {
						t.Errorf("%s/%s/δ=%d: engine %s failed: %v", dg.name, m.Name, delta, eng.Name, err)
						continue
					}
					if got != want {
						t.Errorf("%s/%s/δ=%d: engine %s counted %d, oracle %d",
							dg.name, m.Name, delta, eng.Name, got, want)
					}
				}
			}
		}
	}
}

// TestDifferentialRandomMotifs widens the motif axis beyond M1–M4:
// randomized connected motifs (2–4 edges) against the oracle on a seeded
// random graph, through every engine. Catches shape-specific divergence —
// e.g. repeated node pairs or revisiting motifs — that the fixed
// evaluation motifs cannot.
func TestDifferentialRandomMotifs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: covered by TestDifferentialEngines")
	}
	rng := rand.New(rand.NewSource(42))
	g := testutil.RandomGraph(rng, 16, 140, 3000)
	engines := Engines()
	for trial := 0; trial < 6; trial++ {
		m := testutil.RandomConnectedMotif(rng, 2+rng.Intn(3), temporal.Timestamp(200+rng.Int63n(1500)))
		want := oracle.Count(g, m)
		for _, eng := range engines {
			got, err := eng.Count(g, m)
			if err != nil {
				t.Errorf("trial %d (%s): engine %s failed: %v", trial, m, eng.Name, err)
				continue
			}
			if got != want {
				t.Errorf("trial %d (%s): engine %s counted %d, oracle %d", trial, m, eng.Name, got, want)
			}
		}
	}
}
