package testutil

import (
	"math/rand"
	"testing"

	"mint/internal/temporal"
)

func TestRandomGraphShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RandomGraph(rng, 7, 30, 100)
	if g.NumEdges() != 30 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.NumNodes() > 7 {
		t.Fatalf("nodes = %d, want ≤ 7", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges {
		if e.Time < 0 || e.Time >= 100 {
			t.Fatalf("timestamp %d out of range", e.Time)
		}
	}
}

func TestRandomConnectedMotifPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		edges := 2 + rng.Intn(5)
		m := RandomConnectedMotif(rng, edges, 10)
		if m.NumEdges() != edges {
			t.Fatalf("trial %d: edges = %d, want %d", trial, m.NumEdges(), edges)
		}
		// Every edge after the first must share a node with an earlier one.
		seen := map[temporal.NodeID]bool{}
		for i, e := range m.Edges {
			if i > 0 && !seen[e.Src] && !seen[e.Dst] {
				t.Fatalf("trial %d: edge %d (%v) disconnected in %v", trial, i, e, m.Edges)
			}
			seen[e.Src] = true
			seen[e.Dst] = true
		}
	}
}

func TestRandomMotifValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		m := RandomMotif(rng, 2+rng.Intn(3), 10)
		if m.Delta != 10 {
			t.Fatalf("delta = %d", m.Delta)
		}
		for _, e := range m.Edges {
			if e.Src == e.Dst {
				t.Fatalf("self-loop in %v", m.Edges)
			}
		}
	}
}
