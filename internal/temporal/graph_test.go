package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// fig1Graph is the walk-through graph of paper Fig 1/Fig 4(b): six
// temporal edges over four nodes.
func fig1Graph() *Graph {
	return MustNewGraph([]Edge{
		{0, 1, 5},
		{1, 2, 10},
		{2, 0, 20},
		{2, 3, 25},
		{1, 2, 30},
		{0, 1, 40},
	})
}

func TestNewGraphSortsByTime(t *testing.T) {
	g := MustNewGraph([]Edge{
		{0, 1, 30},
		{1, 2, 10},
		{2, 0, 20},
	})
	if g.NumEdges() != 3 || g.NumNodes() != 3 {
		t.Fatalf("got %d edges, %d nodes", g.NumEdges(), g.NumNodes())
	}
	for i, want := range []Timestamp{10, 20, 30} {
		if g.Edges[i].Time != want {
			t.Errorf("edge %d time = %d, want %d", i, g.Edges[i].Time, want)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewGraphRejectsNegativeNodes(t *testing.T) {
	if _, err := NewGraph([]Edge{{-1, 0, 1}}); err == nil {
		t.Fatal("want error for negative src")
	}
	if _, err := NewGraph([]Edge{{0, -2, 1}}); err == nil {
		t.Fatal("want error for negative dst")
	}
}

func TestAdjacencyListsAreIndexSorted(t *testing.T) {
	g := fig1Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	out0 := g.OutEdges(0)
	if len(out0) != 2 || out0[0] != 0 || out0[1] != 5 {
		t.Errorf("Out(0) = %v, want [0 5]", out0)
	}
	in2 := g.InEdges(2)
	if len(in2) != 2 || in2[0] != 1 || in2[1] != 4 {
		t.Errorf("In(2) = %v, want [1 4]", in2)
	}
	if g.TimeSpan() != 35 {
		t.Errorf("TimeSpan = %d, want 35", g.TimeSpan())
	}
}

func TestEmptyGraph(t *testing.T) {
	g := MustNewGraph(nil)
	if g.NumEdges() != 0 || g.NumNodes() != 0 || g.TimeSpan() != 0 {
		t.Fatalf("empty graph: edges=%d nodes=%d span=%d", g.NumEdges(), g.NumNodes(), g.TimeSpan())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchAfter(t *testing.T) {
	list := []EdgeID{2, 5, 9, 14}
	cases := []struct {
		after EdgeID
		want  int
	}{
		{-1, 0}, {1, 0}, {2, 1}, {5, 2}, {8, 2}, {14, 4}, {100, 4},
	}
	for _, c := range cases {
		if got := SearchAfter(list, c.after); got != c.want {
			t.Errorf("SearchAfter(%v, %d) = %d, want %d", list, c.after, got, c.want)
		}
	}
	if got := SearchAfter(nil, 3); got != 0 {
		t.Errorf("SearchAfter(nil) = %d, want 0", got)
	}
}

func TestLinearSearchAfterAgreesWithBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(20)
		list := make([]EdgeID, n)
		v := EdgeID(0)
		for i := range list {
			v += EdgeID(1 + rng.Intn(4))
			list[i] = v
		}
		after := EdgeID(rng.Intn(25) - 2)
		want := SearchAfter(list, after)
		got, _ := LinearSearchAfter(list, 0, after)
		if got != want {
			t.Fatalf("list=%v after=%d: linear=%d binary=%d", list, after, got, want)
		}
		// Starting at any position ≤ want must find the same answer.
		if want > 0 {
			start := rng.Intn(want + 1)
			got, _ = LinearSearchAfter(list, start, after)
			if got != want {
				t.Fatalf("list=%v after=%d start=%d: linear=%d binary=%d", list, after, start, got, want)
			}
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := fig1Graph()
	out := g.OutDegreeStats()
	// Out-degrees: node0=2, node1=2, node2=2, node3=0.
	if out.Max != 2 || out.NumNonZero != 3 {
		t.Errorf("out stats = %+v", out)
	}
	if out.Mean != 2.0 {
		t.Errorf("out mean = %v, want 2", out.Mean)
	}
	in := g.InDegreeStats()
	// In-degrees: node0=1, node1=2, node2=2, node3=1.
	if in.Max != 2 || in.NumNonZero != 4 {
		t.Errorf("in stats = %+v", in)
	}
}

func TestEdgesPerDelta(t *testing.T) {
	g := fig1Graph()
	// span=35, m=6: k(35) = 6, k(7) = 6*7/35 = 1.2
	if got := g.EdgesPerDelta(35); got != 6 {
		t.Errorf("k(35) = %v, want 6", got)
	}
	if got := g.EdgesPerDelta(7); got != 1.2 {
		t.Errorf("k(7) = %v, want 1.2", got)
	}
}

// TestGraphInvariantsProperty checks, via testing/quick, that construction
// from arbitrary edge sets always yields a graph satisfying Validate.
func TestGraphInvariantsProperty(t *testing.T) {
	f := func(raw []struct {
		Src, Dst uint8
		Time     int16
	}) bool {
		edges := make([]Edge, len(raw))
		for i, r := range raw {
			edges[i] = Edge{NodeID(r.Src % 16), NodeID(r.Dst % 16), Timestamp(r.Time)}
		}
		g, err := NewGraph(edges)
		if err != nil {
			return false
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
