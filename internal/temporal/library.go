package temporal

import "fmt"

// This file provides a library of commonly mined δ-temporal motif
// families from the application domains the paper surveys (§II-B):
// cycles for financial fraud, stars for broadcast/aggregation behavior,
// chains for information flow, ping-pongs for conversations, and
// fan-out/fan-in for mediated exchange. All constructors validate through
// NewMotif and respect the hardware limit of MaxMotifEdges.

// Cycle returns the n-node temporal cycle 0→1→…→(n−1)→0 in chronological
// order. Cycle(3, δ) is the paper's M1. Temporal cycles in transaction
// networks indicate potentially fraudulent volume (§II-B).
func Cycle(n int, delta Timestamp) (*Motif, error) {
	if n < 2 || n > MaxMotifEdges {
		return nil, fmt.Errorf("temporal: cycle size %d out of [2,%d]", n, MaxMotifEdges)
	}
	edges := make([]MotifEdge, n)
	for i := 0; i < n; i++ {
		edges[i] = MotifEdge{Src: NodeID(i), Dst: NodeID((i + 1) % n)}
	}
	return NewMotif(fmt.Sprintf("cycle%d", n), delta, edges)
}

// Chain returns the (n+1)-node temporal path 0→1→…→n: information
// relayed hop by hop within δ.
func Chain(n int, delta Timestamp) (*Motif, error) {
	if n < 1 || n > MaxMotifEdges {
		return nil, fmt.Errorf("temporal: chain length %d out of [1,%d]", n, MaxMotifEdges)
	}
	edges := make([]MotifEdge, n)
	for i := 0; i < n; i++ {
		edges[i] = MotifEdge{Src: NodeID(i), Dst: NodeID(i + 1)}
	}
	return NewMotif(fmt.Sprintf("chain%d", n), delta, edges)
}

// OutStar returns the hub-broadcast motif: node 0 contacts k distinct
// leaves in order. OutStar(4, δ) is the paper's M4.
func OutStar(k int, delta Timestamp) (*Motif, error) {
	if k < 1 || k > MaxMotifEdges {
		return nil, fmt.Errorf("temporal: star degree %d out of [1,%d]", k, MaxMotifEdges)
	}
	edges := make([]MotifEdge, k)
	for i := 0; i < k; i++ {
		edges[i] = MotifEdge{Src: 0, Dst: NodeID(i + 1)}
	}
	return NewMotif(fmt.Sprintf("outstar%d", k), delta, edges)
}

// InStar returns the hub-aggregation motif: k distinct sources contact
// node 0 in order.
func InStar(k int, delta Timestamp) (*Motif, error) {
	if k < 1 || k > MaxMotifEdges {
		return nil, fmt.Errorf("temporal: star degree %d out of [1,%d]", k, MaxMotifEdges)
	}
	edges := make([]MotifEdge, k)
	for i := 0; i < k; i++ {
		edges[i] = MotifEdge{Src: NodeID(i + 1), Dst: 0}
	}
	return NewMotif(fmt.Sprintf("instar%d", k), delta, edges)
}

// PingPong returns the k-message conversation motif alternating 0→1,
// 1→0, 0→1, … — the bursty reply pattern of communication networks.
func PingPong(k int, delta Timestamp) (*Motif, error) {
	if k < 2 || k > MaxMotifEdges {
		return nil, fmt.Errorf("temporal: ping-pong length %d out of [2,%d]", k, MaxMotifEdges)
	}
	edges := make([]MotifEdge, k)
	for i := 0; i < k; i++ {
		if i%2 == 0 {
			edges[i] = MotifEdge{Src: 0, Dst: 1}
		} else {
			edges[i] = MotifEdge{Src: 1, Dst: 0}
		}
	}
	return NewMotif(fmt.Sprintf("pingpong%d", k), delta, edges)
}

// FanOutFanIn returns the mediated-exchange motif: a source broadcasts to
// k intermediaries, which then all forward to one sink, in order — a
// layering/smurfing signature in transaction networks.
func FanOutFanIn(k int, delta Timestamp) (*Motif, error) {
	if k < 1 || 2*k > MaxMotifEdges {
		return nil, fmt.Errorf("temporal: fan width %d out of [1,%d]", k, MaxMotifEdges/2)
	}
	edges := make([]MotifEdge, 0, 2*k)
	sink := NodeID(k + 1)
	for i := 0; i < k; i++ {
		edges = append(edges, MotifEdge{Src: 0, Dst: NodeID(i + 1)})
	}
	for i := 0; i < k; i++ {
		edges = append(edges, MotifEdge{Src: NodeID(i + 1), Dst: sink})
	}
	return NewMotif(fmt.Sprintf("fanoutin%d", k), delta, edges)
}

// FeedForward returns the 3-node feed-forward triangle A→B, B→C, A→C —
// the paper's M2 shape.
func FeedForward(delta Timestamp) *Motif {
	return MustNewMotif("feedforward", delta, []MotifEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
}

// Library returns a catalog of named small motifs (≤ MaxMotifEdges edges)
// covering the application families of §II-B, for exploratory profiling.
func Library(delta Timestamp) []*Motif {
	mk := func(m *Motif, err error) *Motif {
		if err != nil {
			panic(err) // static arguments below are always valid
		}
		return m
	}
	return []*Motif{
		mk(Cycle(2, delta)),
		mk(Cycle(3, delta)),
		mk(Cycle(4, delta)),
		mk(Chain(2, delta)),
		mk(Chain(3, delta)),
		mk(OutStar(3, delta)),
		mk(InStar(3, delta)),
		mk(PingPong(3, delta)),
		mk(PingPong(4, delta)),
		mk(FanOutFanIn(2, delta)),
		FeedForward(delta),
	}
}
