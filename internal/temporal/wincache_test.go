package temporal

import (
	"math/rand"
	"testing"
)

// TestWindowCacheMatchesSearchAfter drives randomized query sequences —
// including exact repeats, monotone advances past the linear-scan bound,
// and backward seeks — against both search implementations and requires
// bit-identical answers.
func TestWindowCacheMatchesSearchAfter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		// A strictly increasing index list, like every per-node list.
		n := rng.Intn(40)
		list := make([]EdgeID, n)
		next := EdgeID(0)
		for i := range list {
			next += EdgeID(1 + rng.Intn(5))
			list[i] = next
		}
		c := NewWindowCache(4)
		node := NodeID(rng.Intn(4))
		out := rng.Intn(2) == 0
		after := EdgeID(-1)
		for q := 0; q < 50; q++ {
			switch rng.Intn(4) {
			case 0: // repeat
			case 1: // small forward step
				after += EdgeID(rng.Intn(3))
			case 2: // jump past the linear-advance bound
				after += EdgeID(rng.Intn(60))
			default: // backward seek
				after -= EdgeID(rng.Intn(20))
				if after < -1 {
					after = -1
				}
			}
			want := SearchAfter(list, after)
			got := c.SearchAfter(list, out, node, after)
			if got != want {
				t.Fatalf("trial %d query %d: cache=%d want=%d (after=%d list=%v)",
					trial, q, got, want, after, list)
			}
		}
		if c.Hits()+c.Misses() != 50 {
			t.Fatalf("hits %d + misses %d != 50 queries", c.Hits(), c.Misses())
		}
	}
}

// TestWindowCacheResetInvalidates checks that Reset drops cached state (a
// stale bound from a previous run must not leak into the next) and that a
// pooled cache resized upward keeps answering correctly.
func TestWindowCacheResetInvalidates(t *testing.T) {
	list := []EdgeID{2, 4, 6, 8}
	c := NewWindowCache(2)
	if got := c.SearchAfter(list, true, 1, 5); got != 2 {
		t.Fatalf("warm query = %d, want 2", got)
	}
	other := []EdgeID{10, 20, 30}
	c.Reset(2)
	if got := c.SearchAfter(other, true, 1, -1); got != 0 {
		t.Fatalf("post-reset query = %d, want 0 (stale entry reused)", got)
	}
	c.Reset(8) // grow
	if got := c.SearchAfter(other, false, 7, 15); got != 1 {
		t.Fatalf("post-grow query = %d, want 1", got)
	}
	if c.Hits() != 0 || c.Misses() != 1 {
		t.Fatalf("counters not reset: hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

// TestWindowCacheEpochWrap forces the uint32 epoch counter to wrap and
// verifies no entry from an old epoch is ever trusted.
func TestWindowCacheEpochWrap(t *testing.T) {
	list := []EdgeID{1, 3, 5}
	c := NewWindowCache(1)
	c.SearchAfter(list, true, 0, 4) // cache pos=2 at epoch 1
	c.epoch = ^uint32(0) - 1        // two bumps from wrapping
	c.Reset(1)
	c.Reset(1) // wraps: full clear back to epoch 1
	if c.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", c.epoch)
	}
	if got := c.SearchAfter(list, true, 0, -1); got != 0 {
		t.Fatalf("post-wrap query = %d, want 0", got)
	}
}

func TestGetPutWindowCache(t *testing.T) {
	c := GetWindowCache(16)
	list := []EdgeID{5, 9}
	if got := c.SearchAfter(list, true, 15, 6); got != 1 {
		t.Fatalf("pooled cache query = %d, want 1", got)
	}
	PutWindowCache(c)
	c2 := GetWindowCache(32) // may or may not be the same instance
	if got := c2.SearchAfter(list, true, 15, -1); got != 0 {
		t.Fatalf("recycled cache query = %d, want 0", got)
	}
	PutWindowCache(c2)
	PutWindowCache(nil) // must not panic
}

// TestWindowCacheGraphSwap is the regression test for pooled-cache
// staleness across graphs: a cache used on graph A, returned to the
// pool, and handed out for graph B must answer from B's adjacency —
// never from positions cached against A — even when both graphs have
// the same node count, so Reset takes the O(1) epoch-bump path rather
// than reallocating.
func TestWindowCacheGraphSwap(t *testing.T) {
	ga, err := NewGraph([]Edge{
		{0, 1, 10}, {0, 1, 20}, {0, 1, 30}, {1, 2, 40}, {2, 0, 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := NewGraph([]Edge{
		{0, 2, 5}, {2, 1, 15}, {0, 2, 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ga.NumNodes() != gb.NumNodes() {
		t.Fatalf("test wants equal node counts, got %d vs %d", ga.NumNodes(), gb.NumNodes())
	}

	c := GetWindowCacheFor(ga)
	for u := NodeID(0); int(u) < ga.NumNodes(); u++ {
		c.SearchAfter(ga.Out[u], true, u, 0)
		c.SearchAfter(ga.In[u], false, u, 1)
	}
	PutWindowCache(c)

	c2 := GetWindowCacheFor(gb)
	for u := NodeID(0); int(u) < gb.NumNodes(); u++ {
		for _, after := range []EdgeID{-1, 0, 1, 2} {
			if got, want := c2.SearchAfter(gb.Out[u], true, u, after), SearchAfter(gb.Out[u], after); got != want {
				t.Fatalf("out[%d] after=%d: cache=%d want=%d (stale entry from previous graph)", u, after, got, want)
			}
			if got, want := c2.SearchAfter(gb.In[u], false, u, after), SearchAfter(gb.In[u], after); got != want {
				t.Fatalf("in[%d] after=%d: cache=%d want=%d (stale entry from previous graph)", u, after, got, want)
			}
		}
	}
	PutWindowCache(c2)
}

// TestWindowCacheResetForIdentity pins the ResetFor contract: reuse on
// the same graph stays an O(1) epoch bump, while a different graph
// identity (pointer or edge count) hard-clears every entry so no stale
// position can survive even a hypothetical epoch bug.
func TestWindowCacheResetForIdentity(t *testing.T) {
	ga, err := NewGraph([]Edge{{0, 1, 1}, {1, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := NewGraph([]Edge{{0, 1, 1}, {1, 0, 2}, {0, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}

	c := &WindowCache{}
	c.ResetFor(ga)
	c.SearchAfter(ga.Out[0], true, 0, 0)
	if c.out[0].epoch != c.epoch {
		t.Fatal("expected a live cached entry after the first query")
	}

	// Same graph: cheap invalidation, entries left behind but unstamped.
	epochBefore := c.epoch
	c.ResetFor(ga)
	if c.epoch != epochBefore+1 {
		t.Fatalf("same-graph ResetFor epoch = %d, want %d (O(1) bump)", c.epoch, epochBefore+1)
	}

	// Different graph: every entry must be physically cleared.
	c.SearchAfter(ga.Out[0], true, 0, 0)
	c.ResetFor(gb)
	for i := range c.out {
		if c.out[i] != (winEntry{}) {
			t.Fatalf("out[%d] = %+v after cross-graph ResetFor, want zero", i, c.out[i])
		}
	}
	for i := range c.in {
		if c.in[i] != (winEntry{}) {
			t.Fatalf("in[%d] = %+v after cross-graph ResetFor, want zero", i, c.in[i])
		}
	}
	if c.epoch != 1 {
		t.Fatalf("epoch after cross-graph ResetFor = %d, want 1", c.epoch)
	}
	if got, want := c.SearchAfter(gb.Out[0], true, 0, 1), SearchAfter(gb.Out[0], EdgeID(1)); got != want {
		t.Fatalf("post-swap query = %d, want %d", got, want)
	}
}
