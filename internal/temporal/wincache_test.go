package temporal

import (
	"math/rand"
	"testing"
)

// TestWindowCacheMatchesSearchAfter drives randomized query sequences —
// including exact repeats, monotone advances past the linear-scan bound,
// and backward seeks — against both search implementations and requires
// bit-identical answers.
func TestWindowCacheMatchesSearchAfter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		// A strictly increasing index list, like every per-node list.
		n := rng.Intn(40)
		list := make([]EdgeID, n)
		next := EdgeID(0)
		for i := range list {
			next += EdgeID(1 + rng.Intn(5))
			list[i] = next
		}
		c := NewWindowCache(4)
		node := NodeID(rng.Intn(4))
		out := rng.Intn(2) == 0
		after := EdgeID(-1)
		for q := 0; q < 50; q++ {
			switch rng.Intn(4) {
			case 0: // repeat
			case 1: // small forward step
				after += EdgeID(rng.Intn(3))
			case 2: // jump past the linear-advance bound
				after += EdgeID(rng.Intn(60))
			default: // backward seek
				after -= EdgeID(rng.Intn(20))
				if after < -1 {
					after = -1
				}
			}
			want := SearchAfter(list, after)
			got := c.SearchAfter(list, out, node, after)
			if got != want {
				t.Fatalf("trial %d query %d: cache=%d want=%d (after=%d list=%v)",
					trial, q, got, want, after, list)
			}
		}
		if c.Hits()+c.Misses() != 50 {
			t.Fatalf("hits %d + misses %d != 50 queries", c.Hits(), c.Misses())
		}
	}
}

// TestWindowCacheResetInvalidates checks that Reset drops cached state (a
// stale bound from a previous run must not leak into the next) and that a
// pooled cache resized upward keeps answering correctly.
func TestWindowCacheResetInvalidates(t *testing.T) {
	list := []EdgeID{2, 4, 6, 8}
	c := NewWindowCache(2)
	if got := c.SearchAfter(list, true, 1, 5); got != 2 {
		t.Fatalf("warm query = %d, want 2", got)
	}
	other := []EdgeID{10, 20, 30}
	c.Reset(2)
	if got := c.SearchAfter(other, true, 1, -1); got != 0 {
		t.Fatalf("post-reset query = %d, want 0 (stale entry reused)", got)
	}
	c.Reset(8) // grow
	if got := c.SearchAfter(other, false, 7, 15); got != 1 {
		t.Fatalf("post-grow query = %d, want 1", got)
	}
	if c.Hits() != 0 || c.Misses() != 1 {
		t.Fatalf("counters not reset: hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

// TestWindowCacheEpochWrap forces the uint32 epoch counter to wrap and
// verifies no entry from an old epoch is ever trusted.
func TestWindowCacheEpochWrap(t *testing.T) {
	list := []EdgeID{1, 3, 5}
	c := NewWindowCache(1)
	c.SearchAfter(list, true, 0, 4) // cache pos=2 at epoch 1
	c.epoch = ^uint32(0) - 1        // two bumps from wrapping
	c.Reset(1)
	c.Reset(1) // wraps: full clear back to epoch 1
	if c.epoch != 1 {
		t.Fatalf("epoch after wrap = %d, want 1", c.epoch)
	}
	if got := c.SearchAfter(list, true, 0, -1); got != 0 {
		t.Fatalf("post-wrap query = %d, want 0", got)
	}
}

func TestGetPutWindowCache(t *testing.T) {
	c := GetWindowCache(16)
	list := []EdgeID{5, 9}
	if got := c.SearchAfter(list, true, 15, 6); got != 1 {
		t.Fatalf("pooled cache query = %d, want 1", got)
	}
	PutWindowCache(c)
	c2 := GetWindowCache(32) // may or may not be the same instance
	if got := c2.SearchAfter(list, true, 15, -1); got != 0 {
		t.Fatalf("recycled cache query = %d, want 0", got)
	}
	PutWindowCache(c2)
	PutWindowCache(nil) // must not panic
}
