package temporal

import (
	"testing"
)

func TestCycleConstructor(t *testing.T) {
	c3, err := Cycle(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Cycle(3) must equal the paper's M1.
	m1 := M1(10)
	if c3.String() != m1.String() {
		t.Errorf("Cycle(3) = %s, M1 = %s", c3, m1)
	}
	c2, err := Cycle(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumNodes() != 2 || c2.NumEdges() != 2 {
		t.Errorf("Cycle(2): %d nodes %d edges", c2.NumNodes(), c2.NumEdges())
	}
	for _, bad := range []int{0, 1, MaxMotifEdges + 1} {
		if _, err := Cycle(bad, 10); err == nil {
			t.Errorf("Cycle(%d) accepted", bad)
		}
	}
}

func TestChainConstructor(t *testing.T) {
	ch, err := Chain(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ch.NumNodes() != 4 || ch.NumEdges() != 3 {
		t.Errorf("Chain(3): %d nodes %d edges", ch.NumNodes(), ch.NumEdges())
	}
	if _, err := Chain(0, 10); err == nil {
		t.Error("Chain(0) accepted")
	}
}

func TestStarConstructors(t *testing.T) {
	out, err := OutStar(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// OutStar(4) must equal the paper's M4.
	if out.String() != M4(10).String() {
		t.Errorf("OutStar(4) = %s, M4 = %s", out, M4(10))
	}
	in, err := InStar(3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range in.Edges {
		if e.Dst != 0 {
			t.Errorf("InStar edge %v does not point at hub", e)
		}
	}
	if _, err := OutStar(MaxMotifEdges+1, 10); err == nil {
		t.Error("oversized star accepted")
	}
}

func TestPingPongConstructor(t *testing.T) {
	pp, err := PingPong(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pp.NumNodes() != 2 || pp.NumEdges() != 4 {
		t.Errorf("PingPong(4): %d nodes %d edges", pp.NumNodes(), pp.NumEdges())
	}
	// Directions must alternate.
	for i, e := range pp.Edges {
		want := MotifEdge{Src: 0, Dst: 1}
		if i%2 == 1 {
			want = MotifEdge{Src: 1, Dst: 0}
		}
		if e != want {
			t.Errorf("edge %d = %v, want %v", i, e, want)
		}
	}
	if _, err := PingPong(1, 10); err == nil {
		t.Error("PingPong(1) accepted")
	}
}

func TestFanOutFanInConstructor(t *testing.T) {
	f, err := FanOutFanIn(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumNodes() != 4 || f.NumEdges() != 4 {
		t.Errorf("FanOutFanIn(2): %d nodes %d edges", f.NumNodes(), f.NumEdges())
	}
	// First half leaves the source, second half enters the sink.
	sink := NodeID(3)
	for i, e := range f.Edges {
		if i < 2 && e.Src != 0 {
			t.Errorf("edge %d should leave source: %v", i, e)
		}
		if i >= 2 && e.Dst != sink {
			t.Errorf("edge %d should enter sink: %v", i, e)
		}
	}
	if _, err := FanOutFanIn(MaxMotifEdges, 10); err == nil {
		t.Error("oversized fan accepted")
	}
}

func TestFeedForwardMatchesM2(t *testing.T) {
	if FeedForward(10).String() != M2(10).String() {
		t.Errorf("FeedForward = %s, M2 = %s", FeedForward(10), M2(10))
	}
}

func TestLibraryCatalog(t *testing.T) {
	lib := Library(DeltaHour)
	if len(lib) < 10 {
		t.Fatalf("library has %d motifs", len(lib))
	}
	seen := map[string]bool{}
	for _, m := range lib {
		if m.Delta != DeltaHour {
			t.Errorf("%s: delta = %d", m.Name, m.Delta)
		}
		if m.NumEdges() > MaxMotifEdges {
			t.Errorf("%s exceeds hardware motif limit", m.Name)
		}
		if seen[m.Name] {
			t.Errorf("duplicate motif name %s", m.Name)
		}
		seen[m.Name] = true
	}
}
