package temporal

import (
	"bufio"
	"errors"
	"strings"
	"testing"
)

func TestReadSNAPRoundTrip(t *testing.T) {
	in := "# comment\n% also a comment\n\n1 2 10\n2 3 20\n3 1 30\n"
	g, err := ReadSNAP(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadSNAP: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes, %d edges; want 3, 3", g.NumNodes(), g.NumEdges())
	}
	var sb strings.Builder
	if err := WriteSNAP(&sb, g); err != nil {
		t.Fatalf("WriteSNAP: %v", err)
	}
	g2, err := ReadSNAP(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadSNAP(round trip): %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
}

func TestReadSNAPErrorsCarryLineNumber(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"too few fields", "1 2 10\n1 2\n", "line 2"},
		{"bad src", "x 2 10\n", "line 1"},
		{"bad dst", "1 y 10\n", "line 1"},
		{"bad timestamp", "# header\n1 2 zzz\n", "line 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadSNAP(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReadSNAPTokenTooLong: a line longer than the 1 MiB scan buffer must
// surface as bufio.ErrTooLong wrapped with the line it occurred on, not a
// bare scanner error (or worse, a silently truncated graph).
func TestReadSNAPTokenTooLong(t *testing.T) {
	long := strings.Repeat("9", 2<<20) // one 2 MiB token
	in := "1 2 10\n" + long + " 2 10\n"
	_, err := ReadSNAP(strings.NewReader(in))
	if err == nil {
		t.Fatal("want error, got nil")
	}
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("error %q does not wrap bufio.ErrTooLong", err)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q does not name line 2", err)
	}
}

// FuzzReadSNAP: the loader must never panic on arbitrary input, and every
// parse error must carry a line number so users can find the bad line in
// multi-gigabyte dataset files.
func FuzzReadSNAP(f *testing.F) {
	f.Add("1 2 10\n2 3 20\n")
	f.Add("# comment\n% comment\n\n1 2 10\n")
	f.Add("1 2\n")
	f.Add("a b c\n")
	f.Add("1 2 10 extra fields ok\n")
	f.Add("-1 2 10\n") // negative raw IDs are remapped, never rejected
	f.Add("9223372036854775807 0 0\n")
	f.Add("99999999999999999999 2 10\n") // overflows int64
	f.Add("1\t2\t10\r\n")
	f.Add(strings.Repeat("#", 4096) + "\n1 2 10")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadSNAP(strings.NewReader(in))
		if err != nil {
			if !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error without line number: %q", err)
			}
			return
		}
		// A successfully parsed graph must be internally consistent.
		if g.NumNodes() < 0 || g.NumEdges() < 0 {
			t.Fatalf("negative shape: %d nodes, %d edges", g.NumNodes(), g.NumEdges())
		}
	})
}
