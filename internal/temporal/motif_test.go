package temporal

import (
	"strings"
	"testing"
)

func TestEvaluationMotifs(t *testing.T) {
	ms := EvaluationMotifs(DeltaHour)
	if len(ms) != 4 {
		t.Fatalf("got %d motifs", len(ms))
	}
	wantNodes := []int{3, 3, 4, 5}
	wantEdges := []int{3, 3, 4, 4}
	for i, m := range ms {
		if m.NumNodes() != wantNodes[i] {
			t.Errorf("%s: nodes = %d, want %d", m.Name, m.NumNodes(), wantNodes[i])
		}
		if m.NumEdges() != wantEdges[i] {
			t.Errorf("%s: edges = %d, want %d", m.Name, m.NumEdges(), wantEdges[i])
		}
		if m.Delta != DeltaHour {
			t.Errorf("%s: delta = %d", m.Name, m.Delta)
		}
	}
}

func TestNewMotifValidation(t *testing.T) {
	cases := []struct {
		name  string
		delta Timestamp
		edges []MotifEdge
	}{
		{"empty", 10, nil},
		{"selfloop", 10, []MotifEdge{{0, 0}}},
		{"negative", 10, []MotifEdge{{-1, 0}}},
		{"gap", 10, []MotifEdge{{0, 2}}}, // skips node 1
		{"zerodelta", 0, []MotifEdge{{0, 1}}},
		{"toolong", 10, make([]MotifEdge, MaxMotifEdges+1)},
	}
	for _, c := range cases {
		if c.name == "toolong" {
			for i := range c.edges {
				c.edges[i] = MotifEdge{0, 1}
			}
		}
		if _, err := NewMotif(c.name, c.delta, c.edges); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestParseMotif(t *testing.T) {
	m, err := ParseMotif("cycle", 25, "A->B; B->C; C->A")
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 3 || m.NumEdges() != 3 {
		t.Fatalf("parsed %d nodes %d edges", m.NumNodes(), m.NumEdges())
	}
	want := []MotifEdge{{0, 1}, {1, 2}, {2, 0}}
	for i, e := range m.Edges {
		if e != want[i] {
			t.Errorf("edge %d = %v, want %v", i, e, want[i])
		}
	}

	m2, err := ParseMotif("numeric", 10, "0->1,1->2,2->0")
	if err != nil {
		t.Fatal(err)
	}
	if m2.String() != "0->1,1->2,2->0" {
		t.Errorf("String() = %q", m2.String())
	}

	for _, bad := range []string{"", "A->", "A-B", "A->B->C", "A->A", "?->B"} {
		if _, err := ParseMotif("bad", 10, bad); err == nil {
			t.Errorf("ParseMotif(%q): want error", bad)
		}
	}
}

func TestStaticPattern(t *testing.T) {
	// A motif that revisits the same directed pair collapses statically.
	m := MustNewMotif("pingpong", 10, []MotifEdge{{0, 1}, {1, 0}, {0, 1}})
	p := m.StaticPattern()
	if len(p) != 2 {
		t.Fatalf("static pattern = %v, want 2 unique edges", p)
	}
}

func TestWithDelta(t *testing.T) {
	m := M1(100)
	m2 := m.WithDelta(7)
	if m2.Delta != 7 || m.Delta != 100 {
		t.Fatalf("WithDelta mutated original or failed: %d %d", m.Delta, m2.Delta)
	}
	if m2.NumEdges() != m.NumEdges() {
		t.Fatal("WithDelta lost edges")
	}
}

func TestReadWriteSNAPRoundTrip(t *testing.T) {
	g := fig1Graph()
	var sb strings.Builder
	if err := WriteSNAP(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadSNAP(strings.NewReader("# comment\n" + sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumNodes() != g.NumNodes() {
		t.Fatalf("round trip: %d/%d edges, %d/%d nodes",
			g2.NumEdges(), g.NumEdges(), g2.NumNodes(), g.NumNodes())
	}
	for i := range g.Edges {
		if g.Edges[i] != g2.Edges[i] {
			t.Errorf("edge %d: %v != %v", i, g.Edges[i], g2.Edges[i])
		}
	}
}

func TestReadSNAPErrors(t *testing.T) {
	for _, bad := range []string{"1 2", "a 2 3", "1 b 3", "1 2 c"} {
		if _, err := ReadSNAP(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadSNAP(%q): want error", bad)
		}
	}
}

func TestReadSNAPRemapsSparseIDs(t *testing.T) {
	g, err := ReadSNAP(strings.NewReader("1000000 2000000 5\n2000000 1000000 6\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 {
		t.Fatalf("want dense remap to 2 nodes, got %d", g.NumNodes())
	}
}

func TestSaveLoadSNAPFile(t *testing.T) {
	g := fig1Graph()
	path := t.TempDir() + "/g.txt"
	if err := SaveSNAPFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadSNAPFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("file round trip lost edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	if _, err := LoadSNAPFile(t.TempDir() + "/missing.txt"); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := SaveSNAPFile("/nonexistent-dir/x/y.txt", g); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
