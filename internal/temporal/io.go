package temporal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// maxSNAPNodes and maxSNAPEdges cap what ReadSNAP will load: NodeID and
// EdgeID are int32, so a file with more distinct nodes (or more edge lines)
// would silently wrap IDs and corrupt the graph. Erroring out with the
// count is the only safe behavior.
const (
	maxSNAPNodes = math.MaxInt32
	maxSNAPEdges = math.MaxInt32
)

// ReadSNAP parses a temporal graph in the SNAP temporal-network text
// format used by the paper's datasets (Table I): one edge per line,
// whitespace-separated "src dst timestamp", '#'-prefixed comment lines
// ignored. Node IDs are remapped to a dense 0..n-1 range in order of
// first appearance, matching the preprocessing the paper's baselines do.
func ReadSNAP(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	remap := map[int64]NodeID{}
	node := func(raw int64) (NodeID, bool) {
		if id, ok := remap[raw]; ok {
			return id, true
		}
		if len(remap) >= maxSNAPNodes {
			return 0, false
		}
		id := NodeID(len(remap))
		remap[raw] = id
		return id, true
	}
	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			return nil, fmt.Errorf("temporal: line %d: want 'src dst time', got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(f[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("temporal: line %d: bad src %q: %v", lineNo, f[0], err)
		}
		dst, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("temporal: line %d: bad dst %q: %v", lineNo, f[1], err)
		}
		ts, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("temporal: line %d: bad timestamp %q: %v", lineNo, f[2], err)
		}
		if len(edges) >= maxSNAPEdges {
			return nil, fmt.Errorf("temporal: line %d: graph exceeds %d edges (EdgeID is int32)", lineNo, maxSNAPEdges)
		}
		s, ok := node(src)
		if !ok {
			return nil, fmt.Errorf("temporal: line %d: graph exceeds %d distinct nodes (NodeID is int32)", lineNo, maxSNAPNodes)
		}
		d, ok := node(dst)
		if !ok {
			return nil, fmt.Errorf("temporal: line %d: graph exceeds %d distinct nodes (NodeID is int32)", lineNo, maxSNAPNodes)
		}
		edges = append(edges, Edge{Src: s, Dst: d, Time: Timestamp(ts)})
	}
	if err := sc.Err(); err != nil {
		// The scanner stopped mid-file: report where. lineNo counts fully
		// scanned lines, so the failing line is the next one.
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, fmt.Errorf("temporal: line %d: line exceeds the 1 MiB scan buffer: %w", lineNo+1, err)
		}
		return nil, fmt.Errorf("temporal: line %d: read error: %w", lineNo+1, err)
	}
	g, err := NewGraph(edges)
	if err != nil {
		return nil, err
	}
	// Loaded data crosses a trust boundary that NewGraph's own callers
	// don't: check every structural invariant now so corruption surfaces
	// as a load error, not a miner panic or a silently wrong count.
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("temporal: loaded graph fails validation: %w", err)
	}
	return g, nil
}

// LoadSNAPFile reads a SNAP-format temporal graph from a file path.
func LoadSNAPFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSNAP(f)
}

// WriteSNAP writes the graph in SNAP text format (one "src dst time" line
// per edge, time-ordered). Used by cmd/gengraph so synthetic datasets can
// be fed to external tooling or reloaded.
func WriteSNAP(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.Src, e.Dst, e.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// SaveSNAPFile writes the graph in SNAP text format to a file path.
func SaveSNAPFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSNAP(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
