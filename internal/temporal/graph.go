// Package temporal provides the temporal graph and temporal motif data
// structures used throughout the Mint reproduction.
//
// A temporal graph is a multiset of directed, timestamped edges. Following
// Mackey et al. and the Mint paper (§II-D), the primary representation is a
// temporal edge list sorted by timestamp, plus a compressed per-node
// structure that stores, for every node, the *indices* of its outgoing and
// incoming temporal edges (not neighbor IDs). Because the global edge list
// is sorted by time, each per-node index list is simultaneously sorted by
// time and by edge index — a property the mining algorithms and the
// accelerator's search-index memoization (§VI-A) both rely on.
package temporal

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node in a temporal graph.
type NodeID int32

// EdgeID is an index into a Graph's temporal edge list. Because the edge
// list is sorted by timestamp, comparing EdgeIDs compares times.
type EdgeID int32

// InvalidEdge is the sentinel for "no edge" (paper: eG = -1).
const InvalidEdge EdgeID = -1

// InvalidNode is the sentinel for "no node" (paper: map entries of -1).
const InvalidNode NodeID = -1

// Timestamp is a point in time. The unit is dataset-defined (the paper's
// SNAP datasets use seconds); only differences and ordering matter.
type Timestamp int64

// Edge is a single temporal edge: a directed interaction from Src to Dst
// at time Time.
type Edge struct {
	Src  NodeID
	Dst  NodeID
	Time Timestamp
}

// Graph is an immutable temporal graph.
//
// Edges is sorted by (Time, original order). Out[u] lists the indices of
// edges with Src == u, ascending; In[v] lists the indices of edges with
// Dst == v, ascending. Construct with NewGraph.
type Graph struct {
	Edges []Edge
	Out   [][]EdgeID
	In    [][]EdgeID

	numNodes int
}

// NewGraph builds a Graph from an arbitrary edge multiset. The input slice
// is not retained; edges are copied and stably sorted by timestamp. Node
// IDs must be non-negative; the node count is 1 + the maximum node ID seen
// (isolated smaller IDs simply have empty adjacency).
func NewGraph(edges []Edge) (*Graph, error) {
	maxNode := NodeID(-1)
	for i, e := range edges {
		if e.Src < 0 || e.Dst < 0 {
			return nil, fmt.Errorf("temporal: edge %d has negative node id (%d->%d)", i, e.Src, e.Dst)
		}
		if e.Src > maxNode {
			maxNode = e.Src
		}
		if e.Dst > maxNode {
			maxNode = e.Dst
		}
	}
	sorted := make([]Edge, len(edges))
	copy(sorted, edges)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })

	n := int(maxNode) + 1
	g := &Graph{Edges: sorted, numNodes: n}
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	for _, e := range sorted {
		outDeg[e.Src]++
		inDeg[e.Dst]++
	}
	g.Out = make([][]EdgeID, n)
	g.In = make([][]EdgeID, n)
	for u := 0; u < n; u++ {
		if outDeg[u] > 0 {
			g.Out[u] = make([]EdgeID, 0, outDeg[u])
		}
		if inDeg[u] > 0 {
			g.In[u] = make([]EdgeID, 0, inDeg[u])
		}
	}
	for i, e := range sorted {
		g.Out[e.Src] = append(g.Out[e.Src], EdgeID(i))
		g.In[e.Dst] = append(g.In[e.Dst], EdgeID(i))
	}
	return g, nil
}

// MustNewGraph is NewGraph but panics on error; for tests and examples
// with known-good inputs.
func MustNewGraph(edges []Edge) *Graph {
	g, err := NewGraph(edges)
	if err != nil {
		panic(err)
	}
	return g
}

// NumNodes reports the number of nodes (1 + max node ID).
func (g *Graph) NumNodes() int { return g.numNodes }

// NumEdges reports the number of temporal edges.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Edge returns the temporal edge with index id.
func (g *Graph) Edge(id EdgeID) Edge { return g.Edges[id] }

// Time returns the timestamp of edge id.
func (g *Graph) Time(id EdgeID) Timestamp { return g.Edges[id].Time }

// OutEdges returns the (time-ordered) indices of edges leaving u.
// The returned slice is owned by the graph and must not be modified.
func (g *Graph) OutEdges(u NodeID) []EdgeID { return g.Out[u] }

// InEdges returns the (time-ordered) indices of edges entering v.
// The returned slice is owned by the graph and must not be modified.
func (g *Graph) InEdges(v NodeID) []EdgeID { return g.In[v] }

// TimeSpan returns the difference between the last and first timestamps,
// or zero for graphs with fewer than two edges.
func (g *Graph) TimeSpan() Timestamp {
	if len(g.Edges) < 2 {
		return 0
	}
	return g.Edges[len(g.Edges)-1].Time - g.Edges[0].Time
}

// EdgeRange returns the half-open edge-index range [lo, hi) of edges
// whose timestamp t satisfies start <= t < end. Because Edges is sorted
// by time, the range is contiguous; it is empty (lo == hi) when no edge
// falls in the window. This is the timestamp→EdgeID lift the sharding
// layer uses to turn a root time window into a root index window.
func (g *Graph) EdgeRange(start, end Timestamp) (lo, hi EdgeID) {
	n := len(g.Edges)
	l := sort.Search(n, func(i int) bool { return g.Edges[i].Time >= start })
	h := sort.Search(n, func(i int) bool { return g.Edges[i].Time >= end })
	if h < l {
		h = l
	}
	return EdgeID(l), EdgeID(h)
}

// SearchAfter returns the position of the first entry in list whose edge
// index is strictly greater than after. Because per-node lists are sorted
// by edge index, this is the software binary search the paper's baselines
// perform on every candidate-gathering step (Algorithm 1 lines 31/33/35).
func SearchAfter(list []EdgeID, after EdgeID) int {
	return sort.Search(len(list), func(i int) bool { return list[i] > after })
}

// LinearSearchAfter is the streaming variant the Mint search engine uses
// in hardware (§V-B: "Mint employs linear search"): it scans from position
// start and returns the first position whose edge index exceeds after,
// along with the number of entries examined. It assumes list[start:] is
// sorted ascending.
func LinearSearchAfter(list []EdgeID, start int, after EdgeID) (pos, scanned int) {
	i := start
	for i < len(list) && list[i] <= after {
		i++
	}
	return i, i - start + boolToInt(i < len(list))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// DegreeStats summarizes a degree distribution; used by the dataset
// tooling (Table I) and the memoization analysis (§VIII-A, which relates
// memoization benefit to the size of the largest neighborhoods).
type DegreeStats struct {
	Max        int
	Mean       float64
	P50        int
	P90        int
	P99        int
	Top10Mean  float64 // mean size of the largest 10% of neighborhoods
	NumNonZero int
}

// OutDegreeStats computes DegreeStats over per-node out-neighborhood sizes.
func (g *Graph) OutDegreeStats() DegreeStats { return degreeStats(g.Out) }

// InDegreeStats computes DegreeStats over per-node in-neighborhood sizes.
func (g *Graph) InDegreeStats() DegreeStats { return degreeStats(g.In) }

func degreeStats(adj [][]EdgeID) DegreeStats {
	degs := make([]int, 0, len(adj))
	total := 0
	for _, l := range adj {
		if len(l) > 0 {
			degs = append(degs, len(l))
			total += len(l)
		}
	}
	if len(degs) == 0 {
		return DegreeStats{}
	}
	sort.Ints(degs)
	pct := func(p float64) int { return degs[min(len(degs)-1, int(p*float64(len(degs))))] }
	top10 := degs[len(degs)-max(1, len(degs)/10):]
	t10sum := 0
	for _, d := range top10 {
		t10sum += d
	}
	return DegreeStats{
		Max:        degs[len(degs)-1],
		Mean:       float64(total) / float64(len(degs)),
		P50:        pct(0.50),
		P90:        pct(0.90),
		P99:        pct(0.99),
		Top10Mean:  float64(t10sum) / float64(len(top10)),
		NumNonZero: len(degs),
	}
}

// EdgesPerDelta estimates k, the expected number of edges occurring within
// a δ window (§III-A uses k in the complexity bound O(|E_G|·k^(|E_M|-1))).
func (g *Graph) EdgesPerDelta(delta Timestamp) float64 {
	span := g.TimeSpan()
	if span <= 0 {
		return float64(g.NumEdges())
	}
	return float64(g.NumEdges()) * float64(delta) / float64(span)
}

// Validate checks internal invariants: endpoint IDs within the node
// range, adjacency tables sized to the node count, edges sorted by time,
// and adjacency lists in-range, consistent, and index-sorted. It is used
// by property tests and runs after every loader (ReadSNAP), so a
// corrupted or hand-built graph fails loudly here instead of as an
// index panic — or a silent wrong count — deep inside a miner.
func (g *Graph) Validate() error {
	n := g.numNodes
	if n < 0 {
		return fmt.Errorf("temporal: negative node count %d", n)
	}
	if len(g.Out) != n || len(g.In) != n {
		return fmt.Errorf("temporal: adjacency tables sized %d/%d for %d nodes",
			len(g.Out), len(g.In), n)
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if e.Src < 0 || int(e.Src) >= n || e.Dst < 0 || int(e.Dst) >= n {
			return fmt.Errorf("temporal: edge %d endpoints (%d -> %d) outside node range [0,%d)",
				i, e.Src, e.Dst, n)
		}
		if i > 0 && e.Time < g.Edges[i-1].Time {
			return fmt.Errorf("temporal: edges out of time order at %d", i)
		}
	}
	seenOut := 0
	for u, l := range g.Out {
		for i, id := range l {
			if id < 0 || int(id) >= len(g.Edges) {
				return fmt.Errorf("temporal: out list of node %d has edge id %d outside [0,%d)", u, id, len(g.Edges))
			}
			if i > 0 && l[i-1] >= id {
				return fmt.Errorf("temporal: out list of node %d not strictly increasing", u)
			}
			if g.Edges[id].Src != NodeID(u) {
				return fmt.Errorf("temporal: out list of node %d contains foreign edge %d", u, id)
			}
			seenOut++
		}
	}
	if seenOut != len(g.Edges) {
		return errors.New("temporal: out lists do not cover edge list")
	}
	seenIn := 0
	for v, l := range g.In {
		for i, id := range l {
			if id < 0 || int(id) >= len(g.Edges) {
				return fmt.Errorf("temporal: in list of node %d has edge id %d outside [0,%d)", v, id, len(g.Edges))
			}
			if i > 0 && l[i-1] >= id {
				return fmt.Errorf("temporal: in list of node %d not strictly increasing", v)
			}
			if g.Edges[id].Dst != NodeID(v) {
				return fmt.Errorf("temporal: in list of node %d contains foreign edge %d", v, id)
			}
			seenIn++
		}
	}
	if seenIn != len(g.Edges) {
		return errors.New("temporal: in lists do not cover edge list")
	}
	return nil
}
