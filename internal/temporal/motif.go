package temporal

import (
	"fmt"
	"strings"
)

// MaxMotifEdges is the largest motif the Mint hardware supports (§V-B:
// "Mint supports temporal motifs of up to eight edges"). The software
// miners share the limit so that every configuration expressible here is
// also realizable on the modeled accelerator.
const MaxMotifEdges = 8

// MotifEdge is one edge of a temporal motif: a directed edge between two
// motif-local node IDs. The position of the edge within Motif.Edges is its
// chronological rank (the paper's eM index).
type MotifEdge struct {
	Src NodeID
	Dst NodeID
}

// Motif is a δ-temporal motif: an ordered sequence of directed edges over
// a small set of motif nodes, to be matched against graph edges with
// strictly increasing timestamps spanning at most Delta.
type Motif struct {
	Name  string
	Edges []MotifEdge
	Delta Timestamp

	numNodes int
}

// NewMotif validates and constructs a motif. Edge endpoints must be
// non-negative, self-loops are rejected (temporal motifs in the paper's
// evaluation are loop-free, and a loop can never satisfy the distinct
// node-mapping constraint), node IDs must form a contiguous range starting
// at 0, and the edge count must be between 1 and MaxMotifEdges.
func NewMotif(name string, delta Timestamp, edges []MotifEdge) (*Motif, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("temporal: motif %q has no edges", name)
	}
	if len(edges) > MaxMotifEdges {
		return nil, fmt.Errorf("temporal: motif %q has %d edges, max is %d", name, len(edges), MaxMotifEdges)
	}
	if delta <= 0 {
		return nil, fmt.Errorf("temporal: motif %q has non-positive delta %d", name, delta)
	}
	seen := map[NodeID]bool{}
	maxNode := NodeID(-1)
	for i, e := range edges {
		if e.Src < 0 || e.Dst < 0 {
			return nil, fmt.Errorf("temporal: motif %q edge %d has negative node", name, i)
		}
		if e.Src == e.Dst {
			return nil, fmt.Errorf("temporal: motif %q edge %d is a self-loop", name, i)
		}
		seen[e.Src] = true
		seen[e.Dst] = true
		if e.Src > maxNode {
			maxNode = e.Src
		}
		if e.Dst > maxNode {
			maxNode = e.Dst
		}
	}
	// Contiguity: node IDs 0..maxNode must all appear. Comparing set size
	// against the range size checks this in O(1) — a per-ID sweep would be
	// O(maxNode) and turns adversarial inputs like "2147483647->0" into a
	// multi-second stall (found by FuzzMotifParse).
	if len(seen) != int(maxNode)+1 {
		// Pigeonhole: with len(seen) distinct IDs, the first gap lies in
		// 0..len(seen), so the report loop is O(edges) regardless of maxNode.
		u := NodeID(0)
		for seen[u] {
			u++
		}
		return nil, fmt.Errorf("temporal: motif %q skips node id %d", name, u)
	}
	cp := make([]MotifEdge, len(edges))
	copy(cp, edges)
	return &Motif{Name: name, Edges: cp, Delta: delta, numNodes: int(maxNode) + 1}, nil
}

// MustNewMotif is NewMotif but panics on error.
func MustNewMotif(name string, delta Timestamp, edges []MotifEdge) *Motif {
	m, err := NewMotif(name, delta, edges)
	if err != nil {
		panic(err)
	}
	return m
}

// NumNodes reports the number of distinct motif nodes.
func (m *Motif) NumNodes() int { return m.numNodes }

// NumEdges reports the number of motif edges.
func (m *Motif) NumEdges() int { return len(m.Edges) }

// WithDelta returns a copy of the motif with a different time window.
func (m *Motif) WithDelta(delta Timestamp) *Motif {
	cp := *m
	cp.Delta = delta
	return &cp
}

// String renders the motif in the parser syntax, e.g. "0->1,1->2,2->0".
func (m *Motif) String() string {
	var b strings.Builder
	for i, e := range m.Edges {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d->%d", e.Src, e.Dst)
	}
	return b.String()
}

// StaticPattern returns the motif's underlying static pattern: the
// deduplicated set of directed edges with temporal order erased. This is
// the pattern the Paranjape-style baseline and the FlexMiner comparison
// mine first (§VII-D, Fig 12).
func (m *Motif) StaticPattern() []MotifEdge {
	seen := map[MotifEdge]bool{}
	var out []MotifEdge
	for _, e := range m.Edges {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// ParseMotif parses the compact motif syntax: comma- or semicolon-
// separated directed edges "src->dst" using either small integers or
// single letters A..Z for node names, in chronological order. Examples:
//
//	"0->1,1->2,2->0"       three-node temporal cycle
//	"A->B; B->C; C->A"     the same motif with letter names
func ParseMotif(name string, delta Timestamp, s string) (*Motif, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ';' })
	if len(fields) == 0 {
		return nil, fmt.Errorf("temporal: motif spec %q has no edges", s)
	}
	names := map[string]NodeID{}
	parseNode := func(tok string) (NodeID, error) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return 0, fmt.Errorf("temporal: empty node name in %q", s)
		}
		if len(tok) == 1 && tok[0] >= 'A' && tok[0] <= 'Z' {
			if id, ok := names[tok]; ok {
				return id, nil
			}
			id := NodeID(len(names))
			names[tok] = id
			return id, nil
		}
		var id NodeID
		if _, err := fmt.Sscanf(tok, "%d", &id); err != nil {
			return 0, fmt.Errorf("temporal: bad node name %q in motif spec", tok)
		}
		return id, nil
	}
	var edges []MotifEdge
	for _, f := range fields {
		parts := strings.Split(f, "->")
		if len(parts) != 2 {
			return nil, fmt.Errorf("temporal: bad edge %q in motif spec (want src->dst)", f)
		}
		src, err := parseNode(parts[0])
		if err != nil {
			return nil, err
		}
		dst, err := parseNode(parts[1])
		if err != nil {
			return nil, err
		}
		edges = append(edges, MotifEdge{Src: src, Dst: dst})
	}
	return NewMotif(name, delta, edges)
}

// DeltaHour is one hour in the seconds-based timestamp convention used by
// the SNAP datasets and this repository's synthetic datasets. The paper's
// evaluation fixes δ = 1 hour (§VII-A).
const DeltaHour Timestamp = 3600

// Evaluation motifs M1–M4 (§VII-A, Fig 9). The camera-ready figure is not
// machine-readable in the provided text; these are the reconstruction
// documented in DESIGN.md §5: 3–5 nodes and 3–4 edges, matching the
// paper's stated size range.

// M1 is the three-node, three-edge temporal cycle A→B→C→A.
func M1(delta Timestamp) *Motif {
	return MustNewMotif("M1", delta, []MotifEdge{{0, 1}, {1, 2}, {2, 0}})
}

// M2 is the three-node, three-edge feed-forward triangle A→B, B→C, A→C.
func M2(delta Timestamp) *Motif {
	return MustNewMotif("M2", delta, []MotifEdge{{0, 1}, {1, 2}, {0, 2}})
}

// M3 is the four-node, four-edge temporal cycle A→B→C→D→A.
func M3(delta Timestamp) *Motif {
	return MustNewMotif("M3", delta, []MotifEdge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
}

// M4 is the five-node, four-edge temporal out-star A→B, A→C, A→D, A→E.
func M4(delta Timestamp) *Motif {
	return MustNewMotif("M4", delta, []MotifEdge{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
}

// EvaluationMotifs returns M1–M4 with the given δ, in paper order.
func EvaluationMotifs(delta Timestamp) []*Motif {
	return []*Motif{M1(delta), M2(delta), M3(delta), M4(delta)}
}
