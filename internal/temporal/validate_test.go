package temporal

import (
	"math/rand"
	"strings"
	"testing"
)

// cloneGraph deep-copies g so a corruption never leaks between subtests.
func cloneGraph(g *Graph) *Graph {
	c := &Graph{numNodes: g.numNodes}
	c.Edges = append([]Edge(nil), g.Edges...)
	c.Out = make([][]EdgeID, len(g.Out))
	for i, l := range g.Out {
		c.Out[i] = append([]EdgeID(nil), l...)
	}
	c.In = make([][]EdgeID, len(g.In))
	for i, l := range g.In {
		c.In[i] = append([]EdgeID(nil), l...)
	}
	return c
}

// validateCorruptions is the invariant-by-invariant corruption table:
// each entry breaks exactly one structural property Validate guards.
var validateCorruptions = []struct {
	name    string
	corrupt func(g *Graph)
}{
	{"time order", func(g *Graph) {
		g.Edges[0].Time, g.Edges[len(g.Edges)-1].Time =
			g.Edges[len(g.Edges)-1].Time, g.Edges[0].Time+1
	}},
	{"src out of range", func(g *Graph) { g.Edges[1].Src = NodeID(g.numNodes) }},
	{"dst negative", func(g *Graph) { g.Edges[1].Dst = -1 }},
	{"out table truncated", func(g *Graph) { g.Out = g.Out[:len(g.Out)-1] }},
	{"in table oversized", func(g *Graph) { g.In = append(g.In, nil) }},
	{"out id out of range", func(g *Graph) {
		l := firstNonEmpty(g.Out)
		l[0] = EdgeID(len(g.Edges))
	}},
	{"out id negative", func(g *Graph) {
		l := firstNonEmpty(g.Out)
		l[0] = -1
	}},
	{"in id out of range", func(g *Graph) {
		l := firstNonEmpty(g.In)
		l[len(l)-1] = EdgeID(len(g.Edges) + 3)
	}},
	{"out list not increasing", func(g *Graph) {
		for _, l := range g.Out {
			if len(l) >= 2 {
				l[1] = l[0]
				return
			}
		}
		panic("test graph has no out list with 2 entries")
	}},
	{"out list foreign edge", func(g *Graph) {
		// Move one edge id to a node that is not its source.
		for u, l := range g.Out {
			if len(l) == 0 {
				continue
			}
			id := l[0]
			v := (u + 1) % len(g.Out)
			if g.Edges[id].Src == NodeID(v) {
				continue
			}
			g.Out[u] = l[1:]
			g.Out[v] = append([]EdgeID{id}, g.Out[v]...)
			return
		}
		panic("test graph has no movable out edge")
	}},
	{"in list dropped entry", func(g *Graph) {
		l := firstNonEmpty(g.In)
		copy(l, l[1:])
		for i := range g.In {
			if len(g.In[i]) > 0 && &g.In[i][0] == &l[0] {
				g.In[i] = g.In[i][:len(g.In[i])-1]
				return
			}
		}
		panic("in list not found")
	}},
}

func firstNonEmpty(lists [][]EdgeID) []EdgeID {
	for _, l := range lists {
		if len(l) > 0 {
			return l
		}
	}
	panic("test graph has no non-empty list")
}

// TestValidateDetectsCorruption corrupts each invariant in turn and
// requires Validate to reject every mutation while accepting the
// pristine graph — the loader-side safety net the miners rely on to
// never index out of bounds or count against a miswired adjacency.
func TestValidateDetectsCorruption(t *testing.T) {
	base, err := NewGraph([]Edge{
		{0, 1, 10}, {1, 2, 20}, {2, 0, 30}, {0, 2, 30}, {2, 1, 40}, {1, 0, 55},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("pristine graph fails validation: %v", err)
	}
	for _, tc := range validateCorruptions {
		t.Run(strings.ReplaceAll(tc.name, " ", "_"), func(t *testing.T) {
			g := cloneGraph(base)
			tc.corrupt(g)
			if err := g.Validate(); err == nil {
				t.Fatalf("corruption %q not detected", tc.name)
			} else {
				t.Logf("detected: %v", err)
			}
		})
	}
}

// TestValidateRandomizedCorruption is the property-test form: random
// graphs, random corruption from the table, Validate must always object.
func TestValidateRandomizedCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(6)
		edges := make([]Edge, 0, 24)
		ts := Timestamp(0)
		for i := 0; i < 12+rng.Intn(12); i++ {
			ts += Timestamp(rng.Intn(3))
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				v = (v + 1) % NodeID(n)
			}
			edges = append(edges, Edge{Src: u, Dst: v, Time: ts})
		}
		g, err := NewGraph(edges)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: valid random graph rejected: %v", trial, err)
		}
		tc := validateCorruptions[rng.Intn(len(validateCorruptions))]
		c := cloneGraph(g)
		tc.corrupt(c)
		if err := c.Validate(); err == nil {
			t.Fatalf("trial %d: corruption %q not detected", trial, tc.name)
		}
	}
}

// TestReadSNAPValidates confirms the loader runs the validator: a
// well-formed file loads, and the resulting graph passes Validate.
func TestReadSNAPValidates(t *testing.T) {
	g, err := ReadSNAP(strings.NewReader("# comment\n5 7 100\n7 5 101\n5 9 102\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("loaded graph fails validation: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %d nodes / %d edges, want 3/3", g.NumNodes(), g.NumEdges())
	}
}
