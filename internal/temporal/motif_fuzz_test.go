package temporal

import (
	"strings"
	"testing"
)

// FuzzMotifParse: ParseMotif must never panic or stall on arbitrary input,
// must reject motifs beyond the MaxMotifEdges hardware limit, and every
// accepted motif must survive a parse → String → parse round trip with its
// structure intact (String is the canonical form, so the second parse must
// also reproduce the same string). This is the regression guard for the
// contiguity check in NewMotif, whose original per-ID sweep turned inputs
// like "2147483647->0" into a multi-second stall.
func FuzzMotifParse(f *testing.F) {
	f.Add("0->1,1->2,2->0")
	f.Add("A->B; B->C; C->A")
	f.Add("0->1")
	f.Add("0->1,1->0,0->1,1->0")
	f.Add(" 0 -> 1 ; 1 -> 2 ")
	f.Add("->")
	f.Add("0->0")
	f.Add("0->2")                            // skips node 1
	f.Add("2147483647->0")                   // huge ID: must fail fast
	f.Add("0->99999999999999999999")         // overflows the node type
	f.Add("-1->0")                           // negative ID
	f.Add("A->B,B->" + strings.Repeat("Z", 4096))
	f.Add(strings.TrimSuffix(strings.Repeat("0->1,", MaxMotifEdges+1), ",")) // 9 edges
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ParseMotif("fuzz", DeltaHour, in)
		if err != nil {
			return
		}
		if n := m.NumEdges(); n < 1 || n > MaxMotifEdges {
			t.Fatalf("accepted motif with %d edges from %q (limit %d)", n, in, MaxMotifEdges)
		}
		if m.NumNodes() < 2 || m.NumNodes() > 2*m.NumEdges() {
			t.Fatalf("accepted motif with implausible node count %d from %q", m.NumNodes(), in)
		}
		canon := m.String()
		m2, err := ParseMotif("fuzz2", m.Delta, canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q failed to reparse: %v", canon, in, err)
		}
		if got := m2.String(); got != canon {
			t.Fatalf("round trip drift: %q -> %q -> %q", in, canon, got)
		}
		if m2.NumEdges() != m.NumEdges() || m2.NumNodes() != m.NumNodes() || m2.Delta != m.Delta {
			t.Fatalf("round trip changed shape: %v vs %v (from %q)", m2, m, in)
		}
		for i := range m.Edges {
			if m.Edges[i] != m2.Edges[i] {
				t.Fatalf("round trip changed edge %d: %v vs %v (from %q)", i, m.Edges[i], m2.Edges[i], in)
			}
		}
	})
}
