package temporal

import (
	"sync"
	"unsafe"
)

// WindowCache memoizes per-node, per-direction time-window search bounds:
// the result of the last SearchAfter over a node's neighbor-index list.
// The mining hot paths ask the same question — "first entry of N(u) with
// edge index > after" — over and over while a search tree expands, and the
// `after` argument is monotonically non-decreasing across root tasks
// (roots are generated in chronological order, and every filter inside a
// tree uses an `after` at or beyond the tree's root). The cache exploits
// that monotonicity: a repeated query is answered in O(1), a forward query
// advances linearly from the cached position (falling back to a
// range-narrowed binary search), and a backward query binary-searches only
// the prefix below the cached position. The answer is always exactly
// SearchAfter(list, after); only the work to compute it changes.
//
// A WindowCache is single-owner state: each mining worker keeps its own
// (the parallel miners and the task runtime hand one to every worker
// goroutine), so no synchronization appears on the hot path. Sharing one
// cache between goroutines is a data race by construction — the
// differential harness runs all engines under -race to keep it that way.
type WindowCache struct {
	out, in []winEntry
	epoch   uint32

	// Graph identity (pointer + edge count) the cache was last reset for.
	// Cached positions are only meaningful against the adjacency lists
	// that produced them, so ResetFor hard-clears — rather than merely
	// epoch-bumps — when a pooled cache resurfaces under a different
	// graph. Stored as a uintptr so a pooled cache never pins a retired
	// graph in memory; a recycled address is disambiguated by the edge
	// count, and a false match is harmless anyway (the epoch bump has
	// already invalidated every entry — identity is defense in depth).
	boundGraph uintptr
	boundEdges int

	hits   int64
	misses int64
}

// winEntry is one cached (after, pos) pair; epoch-stamped so Reset can
// invalidate the whole cache in O(1).
type winEntry struct {
	epoch uint32
	after EdgeID
	pos   int32
}

// NewWindowCache returns a cache for a graph with numNodes nodes.
func NewWindowCache(numNodes int) *WindowCache {
	c := &WindowCache{}
	c.Reset(numNodes)
	return c
}

// Reset invalidates every entry and ensures capacity for numNodes nodes.
// Invalidation is O(1) (an epoch bump) except when the epoch counter wraps
// or the cache grows, so per-run reuse of a pooled cache costs nothing.
func (c *WindowCache) Reset(numNodes int) {
	if numNodes > len(c.out) {
		c.out = make([]winEntry, numNodes)
		c.in = make([]winEntry, numNodes)
		c.epoch = 1
	} else if c.epoch++; c.epoch == 0 {
		for i := range c.out {
			c.out[i] = winEntry{}
		}
		for i := range c.in {
			c.in[i] = winEntry{}
		}
		c.epoch = 1
	}
	c.hits, c.misses = 0, 0
}

// ResetFor is Reset bound to a graph identity: it ensures capacity for
// g's nodes and invalidates every entry, hard-clearing (rather than
// epoch-bumping) when the cache last served a different graph. Cached
// positions index a specific graph's adjacency lists, so a pooled cache
// resurfacing under a new graph must never be able to serve them — even
// if a future epoch bug (wraparound, a skipped bump) slips in. All pool
// and worker reuse paths go through this method.
func (c *WindowCache) ResetFor(g *Graph) {
	id := uintptr(unsafe.Pointer(g))
	edges := g.NumEdges()
	if c.boundGraph != id || c.boundEdges != edges {
		for i := range c.out {
			c.out[i] = winEntry{}
		}
		for i := range c.in {
			c.in[i] = winEntry{}
		}
		c.epoch = 0 // Reset bumps to 1; zeroed entries stay invalid
		c.boundGraph = id
		c.boundEdges = edges
	}
	c.Reset(g.NumNodes())
}

// Hits reports queries answered from cached state (exact repeats and
// monotone forward advances).
func (c *WindowCache) Hits() int64 { return c.hits }

// Misses reports queries that found no reusable state (cold entries and
// backward seeks).
func (c *WindowCache) Misses() int64 { return c.misses }

// SearchAfter returns SearchAfter(list, after) for the neighbor-index list
// of node in the given direction (out=true selects the outgoing list),
// reusing and updating the node's cached bound. list must be the same
// slice the graph owns for (node, direction); the cache never retains it.
func (c *WindowCache) SearchAfter(list []EdgeID, out bool, node NodeID, after EdgeID) int {
	e := &c.out[node]
	if !out {
		e = &c.in[node]
	}
	// Exact repeat: the overwhelmingly common case inside one search tree,
	// kept small enough for the compiler to inline at every scan site.
	if e.epoch == c.epoch && e.after == after {
		c.hits++
		return int(e.pos)
	}
	return c.searchSlow(e, list, after)
}

// searchSlow handles the non-repeat cases: cold entries, monotone forward
// advances (galloping from the cached position, O(log gap)), and backward
// seeks (binary search bounded above by the cached position).
func (c *WindowCache) searchSlow(e *winEntry, list []EdgeID, after EdgeID) int {
	var pos int
	switch {
	case e.epoch != c.epoch:
		c.misses++
		pos = searchAfterRange(list, 0, len(list), after)
	case after > e.after:
		c.hits++
		pos = gallopAfter(list, int(e.pos), after)
	default:
		c.misses++
		pos = searchAfterRange(list, 0, int(e.pos), after)
	}
	e.epoch = c.epoch
	e.after = after
	e.pos = int32(pos)
	return pos
}

// gallopAfter returns the first index ≥ lo with list[index] > after, given
// that the answer is at or beyond lo: exponential probes bracket the
// answer, a binary search pins it. Cost is O(log gap) — never worse than
// the full binary search it replaces, and ~1 compare for the tight
// advances the mining loops produce.
func gallopAfter(list []EdgeID, lo int, after EdgeID) int {
	n := len(list)
	if lo >= n || list[lo] > after {
		return lo
	}
	prev, step := lo, 1
	for {
		next := prev + step
		if next >= n {
			return searchAfterRange(list, prev+1, n, after)
		}
		if list[next] > after {
			return searchAfterRange(list, prev+1, next, after)
		}
		prev = next
		step <<= 1
	}
}

// searchAfterRange is SearchAfter restricted to list[lo:hi), hand-rolled so
// the compiler can inline it (sort.Search's closure defeats inlining and
// costs an indirect call per probe).
func searchAfterRange(list []EdgeID, lo, hi int, after EdgeID) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] <= after {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// wcPool recycles WindowCaches (and their O(numNodes) entry arrays) across
// runs; see GetWindowCache.
var wcPool = sync.Pool{}

// GetWindowCache returns a reset WindowCache for numNodes nodes, reusing a
// pooled instance when one is available so steady-state mining performs no
// per-run cache allocations.
func GetWindowCache(numNodes int) *WindowCache {
	if v := wcPool.Get(); v != nil {
		c := v.(*WindowCache)
		c.Reset(numNodes)
		return c
	}
	return NewWindowCache(numNodes)
}

// GetWindowCacheFor returns a reset WindowCache bound to g, reusing a
// pooled instance when one is available. Unlike GetWindowCache it
// records the graph identity (pointer + edge count), so a cache recycled
// across graphs is hard-cleared instead of trusting the epoch stamp
// alone. Mining workers should prefer this over GetWindowCache.
func GetWindowCacheFor(g *Graph) *WindowCache {
	var c *WindowCache
	if v := wcPool.Get(); v != nil {
		c = v.(*WindowCache)
	} else {
		c = &WindowCache{}
	}
	c.ResetFor(g)
	return c
}

// PutWindowCache returns a cache obtained from GetWindowCache to the pool.
func PutWindowCache(c *WindowCache) {
	if c != nil {
		wcPool.Put(c)
	}
}
