// Package staticmine implements directed static subgraph pattern counting
// on the aggregated (time-erased) graph. It plays two roles from the
// paper's evaluation (§VII-D):
//
//   - the phase-1 workload of the Paranjape et al. baseline, which first
//     mines static instances and then resolves temporal constraints; and
//   - the workload of the FlexMiner comparison (Fig 12), where a static
//     graph mining accelerator is modeled as the measured static-mining
//     time divided by FlexMiner's best reported speedup (40×) —
//     the paper's own methodology — while phase 2 is ignored entirely,
//     giving that baseline a performance upper bound.
package staticmine

import (
	"fmt"
	"sort"

	"mint/internal/temporal"
)

// StaticGraph is the time-erased directed simple graph of a temporal
// graph: each ordered node pair with at least one temporal edge appears
// exactly once.
type StaticGraph struct {
	Out [][]temporal.NodeID // sorted, deduplicated successors
	In  [][]temporal.NodeID // sorted, deduplicated predecessors

	numEdges int
}

// Build aggregates a temporal graph into its static graph. Self-loops are
// dropped: motif patterns are loop-free, so they can never participate.
func Build(g *temporal.Graph) *StaticGraph {
	n := g.NumNodes()
	s := &StaticGraph{
		Out: make([][]temporal.NodeID, n),
		In:  make([][]temporal.NodeID, n),
	}
	for _, e := range g.Edges {
		if e.Src != e.Dst {
			s.Out[e.Src] = append(s.Out[e.Src], e.Dst)
		}
	}
	for u := 0; u < n; u++ {
		s.Out[u] = dedupSorted(s.Out[u])
		s.numEdges += len(s.Out[u])
		for _, v := range s.Out[u] {
			s.In[v] = append(s.In[v], temporal.NodeID(u))
		}
	}
	// In-lists were appended in ascending u order, hence already sorted.
	return s
}

func dedupSorted(l []temporal.NodeID) []temporal.NodeID {
	if len(l) == 0 {
		return nil
	}
	sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	out := l[:1]
	for _, v := range l[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// NumNodes reports the node count.
func (s *StaticGraph) NumNodes() int { return len(s.Out) }

// NumEdges reports the number of distinct directed edges.
func (s *StaticGraph) NumEdges() int { return s.numEdges }

// HasEdge reports whether u→v exists, by binary search.
func (s *StaticGraph) HasEdge(u, v temporal.NodeID) bool {
	l := s.Out[u]
	i := sort.Search(len(l), func(i int) bool { return l[i] >= v })
	return i < len(l) && l[i] == v
}

// Pattern is a static directed pattern: a set of directed edges over
// pattern-local nodes. Build one from a temporal motif with FromMotif.
type Pattern struct {
	Edges    []temporal.MotifEdge
	numNodes int
}

// FromMotif erases temporal order from a motif, deduplicates repeated
// directed pairs, and reorders edges into a connected-prefix sequence so
// the enumerator always extends from mapped nodes when possible.
func FromMotif(m *temporal.Motif) Pattern {
	unique := m.StaticPattern()
	ordered := make([]temporal.MotifEdge, 0, len(unique))
	placed := make([]bool, len(unique))
	mapped := map[temporal.NodeID]bool{}
	for len(ordered) < len(unique) {
		found := -1
		for i, e := range unique {
			if placed[i] {
				continue
			}
			if len(ordered) == 0 || mapped[e.Src] || mapped[e.Dst] {
				found = i
				break
			}
		}
		if found < 0 {
			// Disconnected pattern: start a new component.
			for i := range unique {
				if !placed[i] {
					found = i
					break
				}
			}
		}
		e := unique[found]
		placed[found] = true
		ordered = append(ordered, e)
		mapped[e.Src] = true
		mapped[e.Dst] = true
	}
	n := 0
	for _, e := range ordered {
		if int(e.Src) >= n {
			n = int(e.Src) + 1
		}
		if int(e.Dst) >= n {
			n = int(e.Dst) + 1
		}
	}
	return Pattern{Edges: ordered, numNodes: n}
}

// NumNodes reports the number of distinct pattern nodes.
func (p Pattern) NumNodes() int { return p.numNodes }

// Count returns the number of injective node mappings from the pattern
// into the static graph such that every pattern edge is present — the
// "static subgraph instances" of Fig 12. Mappings related by pattern
// automorphisms are counted separately, matching the per-assignment
// accounting the temporal counters use.
func Count(s *StaticGraph, p Pattern) int64 {
	var total int64
	Enumerate(s, p, func([]temporal.NodeID) bool {
		total++
		return true
	})
	return total
}

// Enumerate calls visit with every injective embedding (indexed by pattern
// node). The mapping slice is reused; copy to retain. Returning false
// stops the enumeration.
func Enumerate(s *StaticGraph, p Pattern, visit func(mapping []temporal.NodeID) bool) {
	if p.numNodes == 0 {
		return
	}
	e := &enumerator{s: s, p: p, visit: visit, m2g: make([]temporal.NodeID, p.numNodes)}
	for i := range e.m2g {
		e.m2g[i] = temporal.InvalidNode
	}
	e.used = make(map[temporal.NodeID]bool, p.numNodes)
	e.recurse(0)
}

type enumerator struct {
	s       *StaticGraph
	p       Pattern
	visit   func([]temporal.NodeID) bool
	m2g     []temporal.NodeID
	used    map[temporal.NodeID]bool
	stopped bool
}

func (e *enumerator) recurse(depth int) {
	if e.stopped {
		return
	}
	if depth == len(e.p.Edges) {
		if !e.visit(e.m2g) {
			e.stopped = true
		}
		return
	}
	pe := e.p.Edges[depth]
	u := e.m2g[pe.Src]
	v := e.m2g[pe.Dst]
	switch {
	case u != temporal.InvalidNode && v != temporal.InvalidNode:
		if e.s.HasEdge(u, v) {
			e.recurse(depth + 1)
		}
	case u != temporal.InvalidNode:
		for _, w := range e.s.Out[u] {
			if e.used[w] {
				continue
			}
			e.bind(pe.Dst, w)
			e.recurse(depth + 1)
			e.unbind(pe.Dst, w)
			if e.stopped {
				return
			}
		}
	case v != temporal.InvalidNode:
		for _, w := range e.s.In[v] {
			if e.used[w] {
				continue
			}
			e.bind(pe.Src, w)
			e.recurse(depth + 1)
			e.unbind(pe.Src, w)
			if e.stopped {
				return
			}
		}
	default:
		// First edge of a component: try every static edge.
		for uu := 0; uu < e.s.NumNodes(); uu++ {
			if e.used[temporal.NodeID(uu)] {
				continue
			}
			for _, w := range e.s.Out[uu] {
				if e.used[w] || w == temporal.NodeID(uu) {
					continue
				}
				e.bind(pe.Src, temporal.NodeID(uu))
				e.bind(pe.Dst, w)
				e.recurse(depth + 1)
				e.unbind(pe.Dst, w)
				e.unbind(pe.Src, temporal.NodeID(uu))
				if e.stopped {
					return
				}
			}
		}
	}
}

func (e *enumerator) bind(pn, gn temporal.NodeID) {
	if e.m2g[pn] != temporal.InvalidNode || e.used[gn] {
		panic(fmt.Sprintf("staticmine: conflicting bind %d->%d", pn, gn))
	}
	e.m2g[pn] = gn
	e.used[gn] = true
}

func (e *enumerator) unbind(pn, gn temporal.NodeID) {
	e.m2g[pn] = temporal.InvalidNode
	delete(e.used, gn)
}

// FlexMinerSpeedup is the highest speedup FlexMiner reports over its
// software baseline; the paper divides measured static-mining time by
// this factor to model the accelerator (§VII-D).
const FlexMinerSpeedup = 40.0
