package staticmine

import (
	"math/rand"
	"testing"

	"mint/internal/temporal"
	"mint/internal/testutil"
)

func triangleGraph() *temporal.Graph {
	// Static: 0→1, 1→2, 2→0 plus an extra repeated temporal edge 0→1.
	return temporal.MustNewGraph([]temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 1, Time: 2},
		{Src: 1, Dst: 2, Time: 3},
		{Src: 2, Dst: 0, Time: 4},
		{Src: 3, Dst: 3, Time: 5}, // self-loop: dropped
	})
}

func TestBuildDeduplicates(t *testing.T) {
	s := Build(triangleGraph())
	if s.NumEdges() != 3 {
		t.Fatalf("static edges = %d, want 3", s.NumEdges())
	}
	if !s.HasEdge(0, 1) || !s.HasEdge(1, 2) || !s.HasEdge(2, 0) {
		t.Fatal("missing static edges")
	}
	if s.HasEdge(1, 0) || s.HasEdge(3, 3) {
		t.Fatal("phantom static edges")
	}
}

func TestFromMotifDedupsAndOrders(t *testing.T) {
	m := temporal.MustNewMotif("pp", 10,
		[]temporal.MotifEdge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 0, Dst: 1}})
	p := FromMotif(m)
	if len(p.Edges) != 2 {
		t.Fatalf("pattern edges = %d, want 2", len(p.Edges))
	}
	if p.NumNodes() != 2 {
		t.Fatalf("pattern nodes = %d", p.NumNodes())
	}
}

func TestFromMotifConnectedPrefix(t *testing.T) {
	// Edge sequence 0→1, 2→3, 1→2 is prefix-disconnected temporally; the
	// static ordering should reorder so each edge touches a mapped node.
	m := temporal.MustNewMotif("z", 10,
		[]temporal.MotifEdge{{Src: 0, Dst: 1}, {Src: 2, Dst: 3}, {Src: 1, Dst: 2}})
	p := FromMotif(m)
	mapped := map[temporal.NodeID]bool{}
	for i, e := range p.Edges {
		if i > 0 && !mapped[e.Src] && !mapped[e.Dst] {
			t.Fatalf("edge %d (%v) extends nothing in %v", i, e, p.Edges)
		}
		mapped[e.Src] = true
		mapped[e.Dst] = true
	}
}

func TestCountTriangle(t *testing.T) {
	s := Build(triangleGraph())
	p := FromMotif(temporal.M1(10))
	// The directed 3-cycle embeds with 3 rotations of the mapping.
	if got := Count(s, p); got != 3 {
		t.Fatalf("triangle count = %d, want 3", got)
	}
}

func TestCountStar(t *testing.T) {
	g := temporal.MustNewGraph([]temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 2, Time: 2},
		{Src: 0, Dst: 3, Time: 3},
		{Src: 0, Dst: 4, Time: 4},
	})
	s := Build(g)
	p := FromMotif(temporal.M4(10)) // 4-edge out-star over 5 nodes
	// Injective assignments of 4 labeled leaves to 4 neighbors: 4! = 24.
	if got := Count(s, p); got != 24 {
		t.Fatalf("star count = %d, want 24", got)
	}
}

// bruteForceStatic counts injective embeddings by trying all node tuples.
func bruteForceStatic(s *StaticGraph, p Pattern) int64 {
	n := s.NumNodes()
	assign := make([]temporal.NodeID, p.NumNodes())
	used := make([]bool, n)
	var rec func(k int) int64
	rec = func(k int) int64 {
		if k == len(assign) {
			for _, e := range p.Edges {
				if !s.HasEdge(assign[e.Src], assign[e.Dst]) {
					return 0
				}
			}
			return 1
		}
		var tot int64
		for u := 0; u < n; u++ {
			if used[u] {
				continue
			}
			used[u] = true
			assign[k] = temporal.NodeID(u)
			tot += rec(k + 1)
			used[u] = false
		}
		return tot
	}
	return rec(0)
}

func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		g := testutil.RandomGraph(rng, 3+rng.Intn(4), 5+rng.Intn(20), 50)
		m := testutil.RandomConnectedMotif(rng, 2+rng.Intn(3), 10)
		s := Build(g)
		p := FromMotif(m)
		want := bruteForceStatic(s, p)
		if got := Count(s, p); got != want {
			t.Fatalf("trial %d: motif %v: got %d, want %d", trial, m, got, want)
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	s := Build(triangleGraph())
	p := FromMotif(temporal.M1(10))
	calls := 0
	Enumerate(s, p, func([]temporal.NodeID) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestEmptyInputs(t *testing.T) {
	s := Build(temporal.MustNewGraph(nil))
	p := FromMotif(temporal.M1(10))
	if got := Count(s, p); got != 0 {
		t.Fatalf("empty graph count = %d", got)
	}
}
