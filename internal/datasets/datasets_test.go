package datasets

import (
	"os"
	"path/filepath"
	"testing"

	"mint/internal/temporal"
)

func TestTable1Inventory(t *testing.T) {
	specs := Table1()
	if len(specs) != 6 {
		t.Fatalf("got %d datasets, want 6", len(specs))
	}
	// Spot-check Table I numbers.
	em := specs[0]
	if em.Short != "em" || em.Nodes != 986 || em.TemporalEdges != 332_300 {
		t.Errorf("email-eu spec drifted: %+v", em)
	}
	so := specs[5]
	if so.Short != "so" || so.Nodes != 2_600_000 || so.TemporalEdges != 36_200_000 {
		t.Errorf("stackoverflow spec drifted: %+v", so)
	}
}

func TestByName(t *testing.T) {
	if s, err := ByName("wiki-talk"); err != nil || s.Short != "wt" {
		t.Fatalf("ByName(wiki-talk) = %+v, %v", s, err)
	}
	if s, err := ByName("wt"); err != nil || s.Name != "wiki-talk" {
		t.Fatalf("ByName(wt) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestGenerateScaledTargets(t *testing.T) {
	spec, _ := ByName("em")
	g, err := Generate(spec, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantEdges := int(float64(spec.TemporalEdges) * 0.05)
	if g.NumEdges() != wantEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// Time span scales with edge count, preserving the per-window edge
	// density k of the full dataset.
	wantSpan := float64(spec.TimeSpanDays) * 0.05
	gotSpan := float64(g.TimeSpan()) / secondsPerDay
	if gotSpan < wantSpan*0.9 || gotSpan > wantSpan*1.1 {
		t.Errorf("span = %.1f days, want ≈%.1f", gotSpan, wantSpan)
	}
	fullK := float64(spec.TemporalEdges) * float64(temporal.DeltaHour) /
		(float64(spec.TimeSpanDays) * secondsPerDay)
	scaledK := g.EdgesPerDelta(temporal.DeltaHour)
	if scaledK < fullK*0.8 || scaledK > fullK*1.2 {
		t.Errorf("k = %.1f, want ≈%.1f (full-dataset density)", scaledK, fullK)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := ByName("mo")
	g1, err := Generate(spec, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Generate(spec, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("nondeterministic edge count")
	}
	for i := range g1.Edges {
		if g1.Edges[i] != g2.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, g1.Edges[i], g2.Edges[i])
		}
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	spec, _ := ByName("em")
	for _, s := range []float64{0, -1, 1.5} {
		if _, err := Generate(spec, s); err == nil {
			t.Errorf("scale %v accepted", s)
		}
	}
}

func TestHeavyTailedDegrees(t *testing.T) {
	// wiki-talk must be markedly more hub-concentrated than email-eu,
	// matching the paper's §VIII-A neighborhood-size analysis.
	wt, _ := ByName("wt")
	em, _ := ByName("em")
	gwt, err := Generate(wt, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	gem, err := Generate(em, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	swt := gwt.OutDegreeStats()
	sem := gem.OutDegreeStats()
	// Hub concentration: top-10% mean over overall mean.
	concWT := swt.Top10Mean / swt.Mean
	concEM := sem.Top10Mean / sem.Mean
	if concWT <= concEM {
		t.Errorf("wiki-talk concentration %.2f not above email-eu %.2f", concWT, concEM)
	}
	if swt.Max <= swt.P50*4 {
		t.Errorf("wiki-talk lacks hubs: max=%d p50=%d", swt.Max, swt.P50)
	}
}

func TestBurstinessRaisesEdgesPerDelta(t *testing.T) {
	// Bursts concentrate edges in time: plenty of edges must fall within
	// 1-hour windows even at small scale, or mining finds nothing.
	spec, _ := ByName("em")
	g, err := Generate(spec, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Count max edges within any 1-hour window.
	maxWin := 0
	j := 0
	for i := range g.Edges {
		for g.Edges[i].Time-g.Edges[j].Time > temporal.DeltaHour {
			j++
		}
		if w := i - j + 1; w > maxWin {
			maxWin = w
		}
	}
	if maxWin < 3 {
		t.Errorf("max edges per hour = %d; too sparse for motif mining", maxWin)
	}
}

func TestDescribe(t *testing.T) {
	spec, _ := ByName("em")
	g, err := Generate(spec, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	st := Describe(spec, g)
	if st.Nodes != g.NumNodes() || st.TemporalEdges != g.NumEdges() {
		t.Fatalf("describe mismatch: %+v", st)
	}
	if st.SizeMB <= 0 || st.TimeSpanDays <= 0 {
		t.Fatalf("describe derived stats: %+v", st)
	}
}

func TestSortedBySize(t *testing.T) {
	specs := SortedBySize()
	for i := 1; i < len(specs); i++ {
		if specs[i-1].TemporalEdges > specs[i].TemporalEdges {
			t.Fatal("not sorted")
		}
	}
	if specs[0].Short != "em" || specs[5].Short != "so" {
		t.Fatalf("order = %v...%v", specs[0].Short, specs[5].Short)
	}
}

func TestLoadPrefersRealFile(t *testing.T) {
	dir := t.TempDir()
	spec, _ := ByName("em")
	// Write a tiny SNAP file under the dataset's name.
	content := "0 1 100\n1 2 200\n2 0 300\n"
	if err := os.WriteFile(filepath.Join(dir, "email-eu.txt"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := Load(spec, dir, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("loaded %d edges, want the real file's 3", g.NumEdges())
	}
	// Without the file it falls back to generation.
	g2, err := Load(spec, t.TempDir(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() == 3 {
		t.Fatal("fallback did not generate")
	}
}

func TestGenerateWithNodeScaleValidation(t *testing.T) {
	spec, _ := ByName("em")
	for _, bad := range [][2]float64{{0.01, 0}, {0.01, 1.5}, {0, 0.5}} {
		if _, err := GenerateWithNodeScale(spec, bad[0], bad[1]); err == nil {
			t.Errorf("scales %v accepted", bad)
		}
	}
	// More nodes than the uniform scaling → statically sparser graph.
	dense, err := GenerateWithNodeScale(spec, 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := GenerateWithNodeScale(spec, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.NumNodes() <= dense.NumNodes() {
		t.Fatalf("node scale ignored: %d vs %d nodes", sparse.NumNodes(), dense.NumNodes())
	}
}
