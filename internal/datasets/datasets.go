// Package datasets provides the six evaluation datasets of the paper
// (Table I): email-eu, mathoverflow, ask-ubuntu, superuser, wiki-talk, and
// stackoverflow, all originally from SNAP.
//
// The real SNAP files are not available in this environment, so the
// package substitutes synthetic generators that reproduce the properties
// the mining workload is sensitive to (DESIGN.md §6): heavy-tailed
// degree distributions from preferential attachment (hub nodes whose huge
// neighborhoods drive the memoization benefit, §VIII-A), bursty
// activity-driven timestamps (which set k, the edges-per-δ density in the
// complexity bound of §III-A), and per-dataset node/edge/timespan targets
// from Table I. A Scale parameter shrinks every dataset uniformly so the
// cycle-level simulator remains tractable; Scale = 1 reproduces the
// full Table I sizes. When a real SNAP file is on disk, Load prefers it.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"mint/internal/temporal"
)

// Spec describes one dataset: the Table I targets plus generator shape
// parameters.
type Spec struct {
	// Name is the full dataset name; Short is the paper's abbreviation.
	Name  string
	Short string

	// Nodes and TemporalEdges are the Table I full-scale targets.
	Nodes         int
	TemporalEdges int
	// TimeSpanDays is the Table I time span.
	TimeSpanDays int

	// Hubbiness shapes the degree skew: the preferential-attachment
	// strength. Larger values concentrate edges on hubs (wiki-talk and
	// stackoverflow have the paper's largest top-10% neighborhoods).
	Hubbiness float64
	// Burstiness shapes timestamp clustering: fraction of edges emitted
	// in short bursts rather than uniformly over the span.
	Burstiness float64
	// Cascade is the probability that an edge triggers a follow-on edge
	// from its destination within minutes (information relay), with a
	// chance of closing the triangle back to the origin. This produces
	// the temporal chains, feed-forward triangles, and cycles that real
	// communication networks exhibit (triadic closure + reply cascades)
	// and that the paper's M1–M3 mine in the millions.
	Cascade float64
	// Seed makes each dataset distinct and deterministic.
	Seed int64
}

// Table1 lists the six datasets with their Table I statistics.
func Table1() []Spec {
	return []Spec{
		{Name: "email-eu", Short: "em", Nodes: 986, TemporalEdges: 332_300, TimeSpanDays: 808, Hubbiness: 0.55, Burstiness: 0.4, Cascade: 0.30, Seed: 101},
		{Name: "mathoverflow", Short: "mo", Nodes: 24_800, TemporalEdges: 506_500, TimeSpanDays: 2350, Hubbiness: 0.6, Burstiness: 0.45, Cascade: 0.25, Seed: 102},
		{Name: "ask-ubuntu", Short: "ub", Nodes: 159_300, TemporalEdges: 964_400, TimeSpanDays: 2613, Hubbiness: 0.6, Burstiness: 0.45, Cascade: 0.25, Seed: 103},
		{Name: "superuser", Short: "su", Nodes: 194_100, TemporalEdges: 1_400_000, TimeSpanDays: 2773, Hubbiness: 0.62, Burstiness: 0.45, Cascade: 0.28, Seed: 104},
		{Name: "wiki-talk", Short: "wt", Nodes: 1_100_000, TemporalEdges: 7_800_000, TimeSpanDays: 2320, Hubbiness: 0.78, Burstiness: 0.55, Cascade: 0.35, Seed: 105},
		{Name: "stackoverflow", Short: "so", Nodes: 2_600_000, TemporalEdges: 36_200_000, TimeSpanDays: 2774, Hubbiness: 0.68, Burstiness: 0.5, Cascade: 0.30, Seed: 106},
	}
}

// ByName returns the spec with the given full or short name.
func ByName(name string) (Spec, error) {
	for _, s := range Table1() {
		if s.Name == name || s.Short == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// secondsPerDay converts Table I spans to the seconds-based timestamps
// used by the SNAP originals (and by δ = 1 hour = 3600).
const secondsPerDay = 86_400

// Generate builds the synthetic dataset at the given scale factor
// (0 < scale ≤ 1). Node count, edge count, *and time span* all shrink by
// scale, so the edges-per-δ density k — which controls search-tree width
// and is the workload's key difficulty parameter (§III-A) — stays at its
// full-dataset value (e.g. ≈17 edges/hour for email-eu, ≈140 for
// wiki-talk, ≈540 for stackoverflow). A scaled dataset is therefore a
// shorter recording of the same network, not a sparser one. Generation is
// deterministic for a given (spec, scale).
func Generate(spec Spec, scale float64) (*temporal.Graph, error) {
	return GenerateWithNodeScale(spec, scale, scale)
}

// GenerateWithNodeScale is Generate with an independent node-count scale.
// Scaling nodes less aggressively than edges (nodeScale > scale) yields a
// statically sparser graph — used by the Fig 12 experiment, where the
// static-mining baseline must see a realistic static edge density rather
// than the near-clique that uniform scaling produces.
func GenerateWithNodeScale(spec Spec, scale, nodeScale float64) (*temporal.Graph, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("datasets: scale %v out of (0,1]", scale)
	}
	if nodeScale <= 0 || nodeScale > 1 {
		return nil, fmt.Errorf("datasets: nodeScale %v out of (0,1]", nodeScale)
	}
	n := int(float64(spec.Nodes) * nodeScale)
	if n < 16 {
		n = 16
	}
	m := int(float64(spec.TemporalEdges) * scale)
	if m < 64 {
		m = 64
	}
	// Span scales with the edge count actually generated, preserving k.
	span := temporal.Timestamp(float64(spec.TimeSpanDays) * secondsPerDay *
		float64(m) / float64(spec.TemporalEdges))
	if span < temporal.DeltaHour {
		span = temporal.DeltaHour
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	edges := make([]temporal.Edge, 0, m)

	// Preferential-attachment endpoint sampler: endpoints are drawn from a
	// growing multiset of previous endpoints with probability Hubbiness,
	// otherwise uniformly — producing the heavy-tailed in/out degrees of
	// communication networks.
	endpoints := make([]temporal.NodeID, 0, 2*m)
	pick := func() temporal.NodeID {
		if len(endpoints) > 0 && rng.Float64() < spec.Hubbiness {
			return endpoints[rng.Intn(len(endpoints))]
		}
		return temporal.NodeID(rng.Intn(n))
	}

	// Bursty timestamp process: a fraction Burstiness of edges arrive in
	// short conversation bursts (replies within minutes), the rest spread
	// uniformly. Generated as a monotone sequence of inter-arrival gaps.
	meanGap := float64(span) / float64(m)
	ts := temporal.Timestamp(0)
	emit := func(src, dst temporal.NodeID) {
		if src == dst {
			dst = temporal.NodeID((int(dst) + 1) % n)
		}
		edges = append(edges, temporal.Edge{Src: src, Dst: dst, Time: ts})
		endpoints = append(endpoints, src, dst)
	}
	// cascade models information relay with triadic closure: an edge u→v
	// triggers v→w shortly after, and sometimes w→u, closing a temporal
	// triangle — the structures M1–M3 mine.
	cascade := func(u, v temporal.NodeID) {
		for len(edges) < m && rng.Float64() < spec.Cascade {
			w := pick()
			if w == v || w == u {
				w = temporal.NodeID((int(w) + 1 + rng.Intn(n-1)) % n)
			}
			ts += temporal.Timestamp(1 + rng.Intn(600)) // relay within minutes
			emit(v, w)
			if len(edges) < m && rng.Float64() < 0.5 {
				ts += temporal.Timestamp(1 + rng.Intn(600))
				emit(w, u) // triadic closure
			}
			u, v = v, w // the relay may continue down the chain
		}
	}
	for len(edges) < m {
		if rng.Float64() < spec.Burstiness {
			// Burst: 2–6 edges in quick succession among few nodes.
			burst := 2 + rng.Intn(5)
			u := pick()
			v := pick()
			for b := 0; b < burst && len(edges) < m; b++ {
				ts += temporal.Timestamp(1 + rng.Intn(120)) // seconds–minutes
				if b%2 == 1 {
					emit(v, u) // replies flow back
				} else {
					emit(u, v)
				}
			}
			if len(edges) < m {
				cascade(u, v)
			}
		} else {
			gap := temporal.Timestamp(rng.ExpFloat64()*meanGap) + 1
			ts += gap
			src := pick()
			dst := pick()
			emit(src, dst)
			if len(edges) < m {
				cascade(src, dst)
			}
		}
	}

	// Rescale timestamps to hit the Table I span exactly.
	if ts > 0 {
		f := float64(span) / float64(ts)
		for i := range edges {
			edges[i].Time = temporal.Timestamp(math.Round(float64(edges[i].Time) * f))
		}
	}
	return temporal.NewGraph(edges)
}

// Load returns the dataset, preferring a real SNAP file when present: it
// looks for <dir>/<name>.txt (SNAP "src dst time" format); otherwise it
// generates the synthetic substitute at the given scale. dir may be empty
// to skip the file lookup.
func Load(spec Spec, dir string, scale float64) (*temporal.Graph, error) {
	if dir != "" {
		path := filepath.Join(dir, spec.Name+".txt")
		if _, err := os.Stat(path); err == nil {
			return temporal.LoadSNAPFile(path)
		}
	}
	return Generate(spec, scale)
}

// Stats summarizes a generated dataset for the Table I reproduction.
type Stats struct {
	Spec          Spec
	Nodes         int
	TemporalEdges int
	SizeMB        float64
	TimeSpanDays  float64
	OutDeg        temporal.DegreeStats
	InDeg         temporal.DegreeStats
}

// Describe computes Table I-style statistics for a graph. SizeMB follows
// the paper's convention of the on-disk edge-list size (16 B per edge).
func Describe(spec Spec, g *temporal.Graph) Stats {
	return Stats{
		Spec:          spec,
		Nodes:         g.NumNodes(),
		TemporalEdges: g.NumEdges(),
		SizeMB:        float64(g.NumEdges()) * 16 / (1 << 20),
		TimeSpanDays:  float64(g.TimeSpan()) / secondsPerDay,
		OutDeg:        g.OutDegreeStats(),
		InDeg:         g.InDegreeStats(),
	}
}

// SortedBySize returns Table1 ordered by edge count ascending — the order
// the paper's figures use (em, mo, ub, su, wt, so).
func SortedBySize() []Spec {
	specs := Table1()
	sort.Slice(specs, func(i, j int) bool { return specs[i].TemporalEdges < specs[j].TemporalEdges })
	return specs
}
