package obs

import (
	"encoding/json"
	"fmt"
	"os"

	"mint/internal/atomicio"
)

// RunReportSchema identifies the RunReport JSON layout; bump on
// incompatible changes so downstream tooling can dispatch.
const RunReportSchema = "mint.run_report/v1"

// GraphInfo identifies the mined graph.
type GraphInfo struct {
	Name  string `json:"name,omitempty"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

// MotifInfo identifies the mined motif.
type MotifInfo struct {
	Name string `json:"name,omitempty"`
	// Spec is the compact edge-sequence syntax ("A->B; B->C; C->A").
	Spec         string `json:"spec,omitempty"`
	Nodes        int    `json:"nodes,omitempty"`
	Edges        int    `json:"edges,omitempty"`
	DeltaSeconds int64  `json:"delta_seconds,omitempty"`
}

// BudgetInfo records the resource bounds a run was launched with (all
// zero = unlimited).
type BudgetInfo struct {
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	MaxMatches  int64   `json:"max_matches,omitempty"`
	MaxNodes    int64   `json:"max_nodes,omitempty"`
}

// RunReport is the machine-readable record of one mining or simulation
// run: workload identity, budget and truncation state, wall/CPU time,
// the headline result, and every counter/gauge/histogram the run
// emitted. It is what `cmd/mine -report out.json` writes and what later
// perf PRs diff their numbers against.
type RunReport struct {
	Schema string `json:"schema"`
	// Tool names the producing command ("mine", "experiments", ...).
	Tool string `json:"tool,omitempty"`
	// Algo is the engine that ran ("mackey", "taskqueue", "sim", ...).
	Algo string `json:"algo,omitempty"`

	Graph   *GraphInfo  `json:"graph,omitempty"`
	Motif   *MotifInfo  `json:"motif,omitempty"`
	Workers int         `json:"workers,omitempty"`
	Budget  *BudgetInfo `json:"budget,omitempty"`

	StartUnixNano int64   `json:"start_unix_nano,omitempty"`
	WallSeconds   float64 `json:"wall_seconds"`
	CPUSeconds    float64 `json:"cpu_seconds,omitempty"`

	Matches    int64  `json:"matches"`
	Truncated  bool   `json:"truncated"`
	StopReason string `json:"stop_reason,omitempty"`

	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// NewRunReport starts a report with the schema stamped and the given
// tool/algo identity.
func NewRunReport(tool, algo string) *RunReport {
	return &RunReport{Schema: RunReportSchema, Tool: tool, Algo: algo}
}

// AttachSnapshot copies a registry snapshot's instruments into the
// report (replacing any previously attached ones).
func (r *RunReport) AttachSnapshot(s Snapshot) {
	r.Counters = s.Counters
	r.Gauges = s.Gauges
	r.Histograms = s.Histograms
}

// Counter returns a counter value from the report (0 when absent).
func (r *RunReport) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	return r.Counters[name]
}

// Marshal renders the report as indented JSON.
func (r *RunReport) Marshal() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteFile writes the report as indented JSON to path, atomically
// (temp file + fsync + rename): a crash mid-write can never leave a torn
// report behind for downstream tooling to choke on.
func (r *RunReport) WriteFile(path string) error {
	data, err := r.Marshal()
	if err != nil {
		return err
	}
	return atomicio.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRunReport parses a report written by WriteFile, checking the
// schema tag.
func ReadRunReport(path string) (*RunReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RunReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("obs: parsing %s: %w", path, err)
	}
	if r.Schema != RunReportSchema {
		return nil, fmt.Errorf("obs: %s has schema %q, want %q", path, r.Schema, RunReportSchema)
	}
	return &r, nil
}
