package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestCounterShardedFold(t *testing.T) {
	var c Counter
	for shard := 0; shard < NumShards*2; shard++ { // wraps shards
		c.AddShard(shard, int64(shard))
	}
	want := int64(0)
	for shard := 0; shard < NumShards*2; shard++ {
		want += int64(shard)
	}
	if got := c.Value(); got != want {
		t.Fatalf("folded counter = %d, want %d", got, want)
	}
	c.Add(5)
	if got := c.Value(); got != want+5 {
		t.Fatalf("after Add: %d, want %d", got, want+5)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var r *Registry
	// Every chained call on a nil registry must be a no-op, not a panic.
	r.Counter("x").Add(1)
	r.Counter("x").AddShard(3, 1)
	r.Gauge("x").Set(7)
	r.Gauge("x").Add(2)
	r.Histogram("x").Observe(9)
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 || r.Histogram("x").Count() != 0 {
		t.Fatal("nil instruments reported nonzero values")
	}
	if r.Name() != "" {
		t.Fatal("nil registry has a name")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var tr *Tracer
	tr.Span("x", 0, timeNowForTest())
	if tr.Total() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded events")
	}
}

// TestConcurrentRegistryAccess hammers registration, increments, and
// snapshots from many goroutines; run under -race this is the data-race
// guard for the whole metrics layer.
func TestConcurrentRegistryAccess(t *testing.T) {
	r := New("race")
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Mix shared and private names so get-or-create races
				// on both the read and the write path.
				r.Counter("shared").AddShard(w, 1)
				r.Counter(fmt.Sprintf("private.%d", w)).Add(1)
				r.Gauge("depth").Set(int64(i))
				r.Histogram("lat").Observe(int64(i))
				if i%64 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if got := s.Counter("shared"); got != workers*iters {
		t.Fatalf("shared counter = %d, want %d", got, workers*iters)
	}
	for w := 0; w < workers; w++ {
		if got := s.Counter(fmt.Sprintf("private.%d", w)); got != iters {
			t.Fatalf("private.%d = %d, want %d", w, got, iters)
		}
	}
	if got := s.Histograms["lat"].Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v          int64
		wantBucket int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1 << 20, 21}, {1<<21 - 1, 21},
		{1 << 62, 63},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.wantBucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.wantBucket)
		}
		lo, hi := BucketRange(bucketIndex(c.v))
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside its bucket range [%d,%d]", c.v, lo, hi)
		}
	}
	// Boundaries are exclusive on the right: 2^k opens bucket k+1.
	for k := 1; k < 10; k++ {
		_, hi := BucketRange(k)
		if bucketIndex(hi) != k || bucketIndex(hi+1) != k+1 {
			t.Errorf("bucket %d upper boundary broken: hi=%d", k, hi)
		}
	}

	var h Histogram
	for _, v := range []int64{0, 1, 1, 3, 900} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 905 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	hs := snapshotHistogram(&h)
	// Populated buckets: ≤0 (×1), [1,1] (×2), [2,3] (×1), [512,1023] (×1).
	want := []Bucket{{-1 << 62, 0, 1}, {1, 1, 2}, {2, 3, 1}, {512, 1023, 1}}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", hs.Buckets, want)
	}
	for i, b := range hs.Buckets {
		if b != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	if m := h.Mean(); m != 181 {
		t.Fatalf("mean = %v, want 181", m)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New("d")
	r.Counter("a").Add(5)
	r.Histogram("h").Observe(3)
	before := r.Snapshot()
	r.Counter("a").Add(7)
	r.Counter("b").Add(1)
	r.Gauge("g").Set(42)
	r.Histogram("h").Observe(3)
	r.Histogram("h").Observe(100)
	d := r.Snapshot().Delta(before)
	if d.Counter("a") != 7 || d.Counter("b") != 1 {
		t.Fatalf("counter deltas wrong: %+v", d.Counters)
	}
	if d.Gauges["g"] != 42 {
		t.Fatalf("gauge delta = %d, want 42 (instantaneous)", d.Gauges["g"])
	}
	dh := d.Histograms["h"]
	if dh.Count != 2 || dh.Sum != 103 {
		t.Fatalf("hist delta count=%d sum=%d", dh.Count, dh.Sum)
	}
	if len(dh.Buckets) != 2 || dh.Buckets[0].N != 1 || dh.Buckets[1].N != 1 {
		t.Fatalf("hist delta buckets = %+v", dh.Buckets)
	}
}
