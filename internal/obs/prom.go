package obs

// Dependency-free Prometheus text-exposition rendering of obs
// registries. Instrument names use dotted mint conventions
// ("admission.queued", "http.count.latency_ns"); metric names sanitize
// dots to underscores and prefix the registry name. Labeled series are
// encoded in the instrument key itself via Labeled ("breaker.state" +
// {workload="g1/M1"} → key `breaker.state{workload="g1/M1"}`), so the
// same key appears verbatim in /debug/vars and as a labeled series on
// /metrics — the two views agree by construction.

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Labeled builds an instrument key carrying Prometheus-style labels:
// Labeled("breaker.state", "workload", "g1/M1") →
// `breaker.state{workload="g1/M1"}`. Label values are escaped per the
// exposition format. kv must alternate key, value; an odd tail is
// dropped.
func Labeled(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// splitKey separates an instrument key into its base name and label
// block ("" when unlabeled).
func splitKey(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 && strings.HasSuffix(key, "}") {
		return key[:i], key[i+1 : len(key)-1]
	}
	return key, ""
}

// promName sanitizes a dotted instrument name into a legal Prometheus
// metric name, prefixed with the registry name when present.
func promName(registry, base string) string {
	var b strings.Builder
	if registry != "" {
		b.WriteString(sanitizeMetric(registry))
		b.WriteByte('_')
	}
	b.WriteString(sanitizeMetric(base))
	return b.String()
}

func sanitizeMetric(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// series is one (labels, value-source) pair within a metric family.
type series struct {
	labels string
	key    string
}

// WritePrometheus renders the snapshots in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, log2 histograms as cumulative `_bucket{le=...}` series plus
// `_sum` and `_count`. Families are emitted in sorted name order with
// one HELP/TYPE header each.
func WritePrometheus(w io.Writer, snaps ...Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, snap := range snaps {
		if err := writeSnapshot(bw, snap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeSnapshot(bw *bufio.Writer, snap Snapshot) error {
	type family struct {
		name   string
		typ    string
		series []series
	}
	fams := map[string]*family{}
	collect := func(keys map[string]int64, typ string) {
		for key := range keys {
			base, labels := splitKey(key)
			name := promName(snap.Name, base)
			f := fams[name]
			if f == nil {
				f = &family{name: name, typ: typ}
				fams[name] = f
			}
			f.series = append(f.series, series{labels: labels, key: key})
		}
	}
	collect(snap.Counters, "counter")
	collect(snap.Gauges, "gauge")
	for key := range snap.Histograms {
		base, labels := splitKey(key)
		name := promName(snap.Name, base)
		f := fams[name]
		if f == nil {
			f = &family{name: name, typ: "histogram"}
			fams[name] = f
		}
		f.series = append(f.series, series{labels: labels, key: key})
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
		base, _ := splitKey(f.series[0].key)
		if _, err := fmt.Fprintf(bw, "# HELP %s mint instrument %q\n# TYPE %s %s\n",
			name, base, name, f.typ); err != nil {
			return err
		}
		for _, s := range f.series {
			var err error
			switch f.typ {
			case "counter":
				err = writeSample(bw, name, s.labels, "", snap.Counters[s.key])
			case "gauge":
				err = writeSample(bw, name, s.labels, "", snap.Gauges[s.key])
			case "histogram":
				err = writeHistogram(bw, name, s.labels, snap.Histograms[s.key])
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSample emits one sample line; extra is an additional label pair
// (already rendered, e.g. `le="1024"`) appended to labels.
func writeSample(bw *bufio.Writer, name, labels, extra string, v int64) error {
	lb := labels
	if extra != "" {
		if lb != "" {
			lb += ","
		}
		lb += extra
	}
	if lb != "" {
		_, err := fmt.Fprintf(bw, "%s{%s} %d\n", name, lb, v)
		return err
	}
	_, err := fmt.Fprintf(bw, "%s %d\n", name, v)
	return err
}

// writeHistogram renders a log2 histogram as cumulative buckets: each
// populated bucket [lo, hi] contributes an `le="<hi>"` sample holding
// the count of observations ≤ hi, followed by `le="+Inf"`, `_sum`, and
// `_count`. Buckets are cumulative in Lo order (BucketRange is
// monotonic).
func writeHistogram(bw *bufio.Writer, name, labels string, h HistogramSnapshot) error {
	buckets := append([]Bucket(nil), h.Buckets...)
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].Lo < buckets[j].Lo })
	var cum int64
	for _, b := range buckets {
		cum += b.N
		le := `le="` + strconv.FormatInt(b.Hi, 10) + `"`
		if err := writeSample(bw, name+"_bucket", labels, le, cum); err != nil {
			return err
		}
	}
	if err := writeSample(bw, name+"_bucket", labels, `le="+Inf"`, h.Count); err != nil {
		return err
	}
	if err := writeSample(bw, name+"_sum", labels, "", h.Sum); err != nil {
		return err
	}
	return writeSample(bw, name+"_count", labels, "", h.Count)
}

// MetricsHandler serves the registries' live snapshots in Prometheus
// text format.
func MetricsHandler(regs ...*Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snaps := make([]Snapshot, 0, len(regs))
		for _, reg := range regs {
			snaps = append(snaps, reg.Snapshot())
		}
		_ = WritePrometheus(w, snaps...)
	})
}

// LintPrometheus validates text in the exposition format strictly
// enough to catch rendering bugs: legal metric and label names, label
// blocks that parse, numeric sample values, TYPE lines naming a known
// type, histogram `le` labels present on `_bucket` series. Returns the
// number of samples on success.
func LintPrometheus(text string) (int, error) {
	samples := 0
	typed := map[string]string{}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return 0, fmt.Errorf("line %d: malformed TYPE: %q", lineNo+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return 0, fmt.Errorf("line %d: unknown TYPE %q", lineNo+1, parts[3])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, rest := line, ""
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name, rest = line[:i], line[i:]
		}
		if !validMetricName(name) {
			return 0, fmt.Errorf("line %d: bad metric name %q", lineNo+1, name)
		}
		rest = strings.TrimSpace(rest)
		hasLE := false
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return 0, fmt.Errorf("line %d: unterminated label block", lineNo+1)
			}
			labels, err := parseLabels(rest[1:end])
			if err != nil {
				return 0, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
			_, hasLE = labels["le"]
			rest = strings.TrimSpace(rest[end+1:])
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return 0, fmt.Errorf("line %d: want value [timestamp], got %q", lineNo+1, rest)
		}
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
			return 0, fmt.Errorf("line %d: bad sample value %q", lineNo+1, fields[0])
		}
		if strings.HasSuffix(name, "_bucket") {
			fam := strings.TrimSuffix(name, "_bucket")
			if typed[fam] == "histogram" && !hasLE {
				return 0, fmt.Errorf("line %d: histogram bucket without le label", lineNo+1)
			}
		}
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples")
	}
	return samples, nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseLabels parses the inside of a label block (`a="x",b="y"`).
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !validLabelName(key) {
			return nil, fmt.Errorf("bad label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("unquoted label value after %q", key)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		out[key] = val.String()
		s = strings.TrimPrefix(strings.TrimSpace(s), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
