package obs

// W3C-traceparent-style trace context. A distributed mintd deployment
// (coordinator + shards) needs one request identity that survives
// process hops, so the serving layer mints a TraceContext per request
// (or adopts the one the client sent), threads it through the engine's
// runctl.Controller, and propagates it on coordinator→shard calls via
// the standard `traceparent` header — shard-side spans then join the
// same trace and the coordinator can assemble one merged timeline.

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
)

// TraceContext identifies one request (TraceID) and one span within it
// (SpanID). IDs are lowercase hex: 32 chars for the trace, 16 for the
// span, per the W3C trace-context format.
type TraceContext struct {
	TraceID string
	SpanID  string
}

// NewTraceContext mints a fresh trace with a fresh root span id.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: randHex(16), SpanID: randHex(8)}
}

// NewSpanID mints a fresh 16-hex-char span id.
func NewSpanID() string { return randHex(8) }

// randHex returns n random bytes as 2n lowercase hex characters.
func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing means the platform is broken; degrade to a
		// constant rather than panicking the serving path.
		for i := range b {
			b[i] = byte(i + 1)
		}
	}
	return hex.EncodeToString(b)
}

// Traceparent renders the context in W3C form:
// "00-<trace-id>-<span-id>-01" (version 00, sampled flag set).
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", tc.TraceID, tc.SpanID)
}

// ParseTraceparent parses a W3C traceparent header value. It accepts
// any version field and requires well-formed, non-zero trace and span
// ids.
func ParseTraceparent(s string) (TraceContext, bool) {
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return TraceContext{}, false
	}
	traceID, spanID := strings.ToLower(parts[1]), strings.ToLower(parts[2])
	if !validHexID(traceID, 32) || !validHexID(spanID, 16) {
		return TraceContext{}, false
	}
	return TraceContext{TraceID: traceID, SpanID: spanID}, true
}

// validHexID reports whether s is exactly n lowercase hex chars and not
// all zeros.
func validHexID(s string, n int) bool {
	if len(s) != n {
		return false
	}
	nonzero := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			nonzero = true
		}
	}
	return nonzero
}

// TraceFromRequest resolves the trace identity of an incoming HTTP
// request: a valid `traceparent` header wins, then `X-Request-ID`
// (used directly when it is already a 32-hex trace id, hashed into one
// otherwise, so arbitrary client request ids still yield stable trace
// ids), and finally a freshly minted context. The returned SpanID is
// the caller's parent span ("" when the client did not send one) — the
// serving layer's root span should use it as its parent so
// cross-process span trees link up.
func TraceFromRequest(r *http.Request) (tc TraceContext, parent string) {
	if tp, ok := ParseTraceparent(r.Header.Get("traceparent")); ok {
		return TraceContext{TraceID: tp.TraceID, SpanID: NewSpanID()}, tp.SpanID
	}
	if rid := strings.TrimSpace(r.Header.Get("X-Request-ID")); rid != "" {
		id := strings.ToLower(rid)
		if !validHexID(id, 32) {
			sum := sha256.Sum256([]byte(rid))
			id = hex.EncodeToString(sum[:16])
		}
		return TraceContext{TraceID: id, SpanID: NewSpanID()}, ""
	}
	return NewTraceContext(), ""
}
