package obs

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestRunReportRoundTrip marshals a fully populated report to disk,
// reads it back, and requires exact equality — the schema must not lose
// information (histogram buckets, budget, truncation state) in transit.
func TestRunReportRoundTrip(t *testing.T) {
	r := New("rt")
	r.Counter("mackey.matches").Add(42)
	r.Counter("mackey.nodes_expanded").AddShard(3, 1000)
	r.Gauge("task.queue.inflight").Set(17)
	r.Histogram("mackey.worker_busy_ns").Observe(1_500_000)
	r.Histogram("mackey.worker_busy_ns").Observe(0)

	rep := NewRunReport("mine", "mackey")
	rep.Graph = &GraphInfo{Name: "email-eu", Nodes: 986, Edges: 6613}
	rep.Motif = &MotifInfo{Name: "M1", Spec: "A->B; B->C; C->A", Nodes: 3, Edges: 3, DeltaSeconds: 3600}
	rep.Workers = 4
	rep.Budget = &BudgetInfo{WallSeconds: 2.5, MaxMatches: 100, MaxNodes: 1 << 20}
	rep.StartUnixNano = 1722800000_000000000
	rep.WallSeconds = 0.125
	rep.CPUSeconds = 0.5
	rep.Matches = 42
	rep.Truncated = true
	rep.StopReason = "node budget exhausted"
	rep.AttachSnapshot(r.Snapshot())

	path := filepath.Join(t.TempDir(), "out.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("round trip changed the report:\nwrote %+v\nread  %+v", rep, got)
	}
	if got.Counter("mackey.matches") != 42 || got.Counter("absent") != 0 {
		t.Fatalf("counter accessor broken: %+v", got.Counters)
	}
}

func TestReadRunReportRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"schema":"something/else"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRunReport(path); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if err := os.WriteFile(path, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRunReport(path); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestProcessCPUSeconds(t *testing.T) {
	// Burn a little CPU; the reading must be non-negative and monotone.
	before := ProcessCPUSeconds()
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	after := ProcessCPUSeconds()
	if before < 0 || after < before {
		t.Fatalf("cpu time went backwards: %v -> %v", before, after)
	}
}
