//go:build unix

package obs

import "syscall"

// ProcessCPUSeconds returns the process's consumed CPU time (user +
// system) so RunReports can record CPU cost alongside wall time. Returns
// 0 where the platform offers no cheap rusage.
func ProcessCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}
