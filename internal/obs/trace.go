package obs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"
	"time"
)

// Event is one traced span: a named wall-clock interval attributed to a
// worker (thread) id. Zero-duration events render as instants.
type Event struct {
	// Name labels the span ("mine.worker", "simulate", ...).
	Name string `json:"name"`
	// Worker is the logical thread the span belongs to (the Chrome
	// trace "tid").
	Worker int32 `json:"worker"`
	// StartNS is the span start, in nanoseconds since the tracer's
	// creation.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span duration in nanoseconds.
	DurNS int64 `json:"dur_ns"`
	// Trace optionally tags the span with the distributed trace id of
	// the request that ran it, so cross-process assembly can pick the
	// right spans out of a shared ring.
	Trace string `json:"trace,omitempty"`
}

// Tracer is a fixed-capacity ring buffer of Events. Emitting never
// allocates and never blocks on I/O; when the ring wraps, the oldest
// events are overwritten — the tracer is a flight recorder, not a log.
// All methods are safe for concurrent use and on a nil receiver.
type Tracer struct {
	mu    sync.Mutex
	base  time.Time
	ring  []Event // fixed capacity; slot next-1 is the newest event
	n     int     // number of valid events (≤ len(ring))
	next  int     // next slot to overwrite
	total int64
}

// NewTracer creates a tracer holding up to capacity events (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{base: time.Now(), ring: make([]Event, capacity)}
}

// Emit records a span that started at start and ran for dur. A nil
// tracer drops the event, so call sites need no enablement branches.
func (t *Tracer) Emit(name string, worker int32, start time.Time, dur time.Duration) {
	t.EmitTagged(name, "", worker, start, dur)
}

// EmitTagged is Emit with a distributed trace id attached to the event.
// An empty id leaves the event untagged.
func (t *Tracer) EmitTagged(name, traceID string, worker int32, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring[t.next] = Event{Name: name, Worker: worker,
		StartNS: start.Sub(t.base).Nanoseconds(), DurNS: dur.Nanoseconds(),
		Trace: traceID}
	t.next = (t.next + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.total++
}

// Base returns the tracer's creation time — the zero point Event.StartNS
// offsets are relative to. Converting ring events into absolute-time
// spans (for cross-process trace assembly) needs it.
func (t *Tracer) Base() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.base
}

// Span emits an event covering start→now; use with defer:
//
//	defer tracer.Span("phase", 0, time.Now())
func (t *Tracer) Span(name string, worker int32, start time.Time) {
	if t == nil {
		return
	}
	t.Emit(name, worker, start, time.Since(start))
}

// Total returns how many events were ever emitted (including ones the
// ring has since overwritten).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.n)
	if t.n == len(t.ring) {
		out = append(out, t.ring[t.next:]...)
		out = append(out, t.ring[:t.next]...)
	} else {
		out = append(out, t.ring[:t.n]...)
	}
	return out
}

// WriteChromeTrace writes the retained events in the Chrome trace_event
// JSON format (the "Trace Event Format" consumed by chrome://tracing and
// https://ui.perfetto.dev): one complete ("X") event per span, with
// microsecond timestamps and the worker id as the thread id.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range t.Events() {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		// ts/dur are microseconds; keep sub-µs precision as decimals.
		_, err := fmt.Fprintf(bw, `{"name":%s,"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s}`,
			strconv.Quote(ev.Name), ev.Worker,
			formatMicros(ev.StartNS), formatMicros(ev.DurNS))
		if err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeTraceFile writes the Chrome trace dump to path.
func (t *Tracer) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// formatMicros renders ns as a decimal microsecond count ("12.345").
func formatMicros(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
}
