//go:build !unix

package obs

// ProcessCPUSeconds returns 0 on platforms without rusage; RunReports
// then simply omit cpu_seconds.
func ProcessCPUSeconds() float64 { return 0 }
