package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

// TestServeExpvarSnapshot starts the observability server on a free
// port, registers a live registry, and checks that /debug/vars serves
// an expvar-compatible JSON document containing the registry snapshot
// and that the pprof index responds.
func TestServeExpvarSnapshot(t *testing.T) {
	r := New("serve_test")
	r.Counter("mackey.matches").Add(7)
	r.Histogram("lat").Observe(3)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The counter keeps moving after publish; snapshots must be live.
	r.Counter("mackey.matches").Add(5)

	resp, err := http.Get("http://" + srv.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar output not JSON: %v\n%s", err, body)
	}
	// expvar always publishes cmdline/memstats; ours must sit alongside.
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("expvar memstats missing — not an expvar endpoint?")
	}
	raw, ok := vars["serve_test"]
	if !ok {
		t.Fatalf("registry not published; vars: %s", body)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("registry snapshot not parseable: %v", err)
	}
	if snap.Counter("mackey.matches") != 12 {
		t.Fatalf("snapshot counter = %d, want 12 (live fold)", snap.Counter("mackey.matches"))
	}
	if snap.Histograms["lat"].Count != 1 {
		t.Fatalf("histogram missing from snapshot: %+v", snap.Histograms)
	}

	pp, err := http.Get("http://" + srv.Addr() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", pp.StatusCode)
	}
}

// TestServeShutdown: Shutdown closes the listener (new connections are
// refused) and returns cleanly; a second Shutdown and a nil-receiver
// Shutdown are both no-ops.
func TestServeShutdown(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", New("shutdown_test"))
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
	if err := srv.Shutdown(ctx); err != nil && err != http.ErrServerClosed {
		t.Fatalf("second Shutdown: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Shutdown(ctx); err != nil {
		t.Fatalf("nil Shutdown: %v", err)
	}
}

// TestPublishTwiceIsSafe: expvar.Publish panics on duplicates; Publish
// must absorb that.
func TestPublishTwiceIsSafe(t *testing.T) {
	r1 := New("dup_name")
	r2 := New("dup_name")
	Publish(r1)
	Publish(r1)
	Publish(r2) // same name, different registry: first binding wins
	Publish(nil)
	Publish(New("")) // anonymous registries are not publishable
}
