package obs

// Per-request distributed tracing. A ReqTrace records the spans of one
// request inside one process (coordinator or shard); spans carry
// absolute unix-nanosecond timestamps so fragments from different
// processes on the same box can be merged into a single timeline. The
// coordinator imports shard fragments (piggybacked on shard responses),
// stores the merged set in a TraceStore keyed by trace id, and serves
// it as a Chrome trace from /debug/trace/<id> or as an inline explain
// tree when the request asked for one.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span is one named interval of a distributed trace. ParentID links
// spans into a tree across process boundaries: a shard's root span
// names the coordinator's per-shard call span as its parent.
type Span struct {
	Name     string            `json:"name"`
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	ParentID string            `json:"parent_id,omitempty"`
	// Proc labels the process the span ran in ("" = the process that
	// assembled the trace; the coordinator stamps shard URLs here).
	Proc string `json:"proc,omitempty"`
	// Worker is the logical thread within the process (Chrome tid).
	Worker int32 `json:"worker,omitempty"`
	// StartUnixNS is the span start as absolute unix nanoseconds —
	// comparable across processes up to host clock skew.
	StartUnixNS int64 `json:"start_unix_ns"`
	DurNS       int64 `json:"dur_ns"`
	// Attrs carries span-scoped decisions: outcome, engine, retry and
	// hedge counts, breaker verdicts, budget splits.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// ReqTrace accumulates the spans of a single request. Safe for
// concurrent use (fan-out goroutines record shard-call spans in
// parallel) and on a nil receiver (tracing disabled).
type ReqTrace struct {
	mu    sync.Mutex
	tc    TraceContext
	root  Span
	done  bool
	spans []Span
}

// NewReqTrace starts recording a request under tc, with a root span
// named name whose parent is the client's span id (empty when the
// client sent no trace context).
func NewReqTrace(tc TraceContext, name, parentID string) *ReqTrace {
	return &ReqTrace{
		tc: tc,
		root: Span{
			Name: name, TraceID: tc.TraceID, SpanID: tc.SpanID,
			ParentID: parentID, StartUnixNS: time.Now().UnixNano(),
		},
	}
}

// TraceID returns the request's trace id ("" on nil).
func (rt *ReqTrace) TraceID() string {
	if rt == nil {
		return ""
	}
	return rt.tc.TraceID
}

// RootID returns the root span's id ("" on nil) — the parent for
// request-level child spans.
func (rt *ReqTrace) RootID() string {
	if rt == nil {
		return ""
	}
	return rt.tc.SpanID
}

// SpanRef is an open span started by Begin; End closes it.
type SpanRef struct {
	rt    *ReqTrace
	span  Span
	start time.Time
}

// Begin opens a child span under parentID (use RootID for top-level
// children). Returns a ref whose End records the span; nil-safe.
func (rt *ReqTrace) Begin(name, parentID string) *SpanRef {
	if rt == nil {
		return nil
	}
	return &SpanRef{
		rt: rt,
		span: Span{
			Name: name, TraceID: rt.tc.TraceID, SpanID: NewSpanID(),
			ParentID: parentID, StartUnixNS: time.Now().UnixNano(),
		},
		start: time.Now(),
	}
}

// ID returns the span's id ("" on nil) — used as the parent of nested
// spans and as the span id propagated to a downstream process.
func (s *SpanRef) ID() string {
	if s == nil {
		return ""
	}
	return s.span.SpanID
}

// Set attaches an attribute to the open span; nil-safe.
func (s *SpanRef) Set(k, v string) {
	if s == nil {
		return
	}
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[k] = v
}

// End closes the span and records it on the request trace; nil-safe.
func (s *SpanRef) End() {
	if s == nil {
		return
	}
	s.span.DurNS = time.Since(s.start).Nanoseconds()
	s.rt.record(s.span)
}

func (rt *ReqTrace) record(sp Span) {
	rt.mu.Lock()
	rt.spans = append(rt.spans, sp)
	rt.mu.Unlock()
}

// Annotate attaches an attribute to the request's root span; nil-safe.
// Handlers use it for request-level decisions (priority, outcome,
// degraded/partial markers) that the access log and explain tree
// surface.
func (rt *ReqTrace) Annotate(k, v string) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	if rt.root.Attrs == nil {
		rt.root.Attrs = make(map[string]string, 8)
	}
	rt.root.Attrs[k] = v
	rt.mu.Unlock()
}

// Attr reads a root-span attribute ("" when absent); nil-safe.
func (rt *ReqTrace) Attr(k string) string {
	if rt == nil {
		return ""
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.root.Attrs[k]
}

// ImportTracer converts the ring-buffer events of an engine Tracer into
// spans parented under parentID. Events tagged with a different trace
// id are skipped (shared rings may hold other requests' spans); events
// tagged with this request's id or untagged are imported.
func (rt *ReqTrace) ImportTracer(tr *Tracer, parentID string) {
	if rt == nil || tr == nil {
		return
	}
	base := tr.Base()
	for _, ev := range tr.Events() {
		if ev.Trace != "" && ev.Trace != rt.TraceID() {
			continue
		}
		rt.record(Span{
			Name: ev.Name, TraceID: rt.tc.TraceID, SpanID: NewSpanID(),
			ParentID: parentID, Worker: ev.Worker,
			StartUnixNS: base.Add(time.Duration(ev.StartNS)).UnixNano(),
			DurNS:       ev.DurNS,
		})
	}
}

// Import merges spans from another process (a shard trace fragment),
// stamping proc on any span that does not already carry a process
// label. Spans with a foreign trace id are dropped.
func (rt *ReqTrace) Import(spans []Span, proc string) {
	if rt == nil {
		return
	}
	for _, sp := range spans {
		if sp.TraceID != rt.TraceID() {
			continue
		}
		if sp.Proc == "" {
			sp.Proc = proc
		}
		rt.record(sp)
	}
}

// Finish closes the root span. Further Spans calls return the final
// set. Idempotent; nil-safe.
func (rt *ReqTrace) Finish() {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	if !rt.done {
		rt.root.DurNS = time.Now().UnixNano() - rt.root.StartUnixNS
		rt.done = true
	}
	rt.mu.Unlock()
}

// Spans returns all recorded spans, root first, sorted by start time
// within each parent. Before Finish the root span is provisional (its
// duration covers start→now) so fragments can be exported mid-request.
func (rt *ReqTrace) Spans() []Span {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	root := rt.root
	if !rt.done {
		root.DurNS = time.Now().UnixNano() - root.StartUnixNS
	}
	if root.Attrs != nil {
		attrs := make(map[string]string, len(root.Attrs))
		for k, v := range root.Attrs {
			attrs[k] = v
		}
		root.Attrs = attrs
	}
	out := make([]Span, 0, len(rt.spans)+1)
	out = append(out, root)
	out = append(out, rt.spans...)
	rt.mu.Unlock()
	sort.SliceStable(out[1:], func(i, j int) bool {
		return out[1+i].StartUnixNS < out[1+j].StartUnixNS
	})
	return out
}

// ExplainNode is one node of the human-readable span tree returned by
// an "explain": true request: name, where it ran, when (relative to the
// trace start) and for how long, the decisions made in it, and its
// children.
type ExplainNode struct {
	Name     string            `json:"name"`
	Proc     string            `json:"proc,omitempty"`
	StartMS  float64           `json:"start_ms"`
	DurMS    float64           `json:"dur_ms"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*ExplainNode    `json:"children,omitempty"`
}

// BuildExplain links spans into a tree by ParentID. Spans whose parent
// is absent from the set (the request root, or orphaned fragments)
// become top-level nodes; with exactly one such node it is returned
// directly, otherwise a synthetic "trace" node wraps them.
func BuildExplain(spans []Span) *ExplainNode {
	if len(spans) == 0 {
		return nil
	}
	var t0 int64 = spans[0].StartUnixNS
	for _, sp := range spans {
		if sp.StartUnixNS < t0 {
			t0 = sp.StartUnixNS
		}
	}
	nodes := make(map[string]*ExplainNode, len(spans))
	for _, sp := range spans {
		if _, dup := nodes[sp.SpanID]; dup {
			continue
		}
		nodes[sp.SpanID] = &ExplainNode{
			Name: sp.Name, Proc: sp.Proc,
			StartMS: float64(sp.StartUnixNS-t0) / 1e6,
			DurMS:   float64(sp.DurNS) / 1e6,
			Attrs:   sp.Attrs,
		}
	}
	var roots []*ExplainNode
	attached := make(map[string]bool, len(spans))
	for _, sp := range spans {
		n := nodes[sp.SpanID]
		if n == nil || attached[sp.SpanID] {
			continue
		}
		attached[sp.SpanID] = true
		if parent, ok := nodes[sp.ParentID]; ok && sp.ParentID != sp.SpanID {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortExplain(roots)
	if len(roots) == 1 {
		return roots[0]
	}
	return &ExplainNode{Name: "trace", Children: roots}
}

func sortExplain(nodes []*ExplainNode) {
	sort.SliceStable(nodes, func(i, j int) bool {
		return nodes[i].StartMS < nodes[j].StartMS
	})
	for _, n := range nodes {
		sortExplain(n.Children)
	}
}

// TraceStore retains the spans of recently completed requests, keyed by
// trace id, with bounded memory (oldest-trace eviction). Adding spans
// for an existing id merges them — late shard fragments land in the
// same trace.
type TraceStore struct {
	mu     sync.Mutex
	cap    int
	traces map[string][]Span
	order  []string // insertion order for eviction
}

// NewTraceStore creates a store retaining up to capacity traces
// (minimum 8).
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 8 {
		capacity = 8
	}
	return &TraceStore{cap: capacity, traces: make(map[string][]Span)}
}

// Add merges spans into the trace with the given id; nil-safe.
func (ts *TraceStore) Add(traceID string, spans []Span) {
	if ts == nil || traceID == "" || len(spans) == 0 {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.traces[traceID]; !ok {
		for len(ts.order) >= ts.cap {
			delete(ts.traces, ts.order[0])
			ts.order = ts.order[1:]
		}
		ts.order = append(ts.order, traceID)
	}
	ts.traces[traceID] = append(ts.traces[traceID], spans...)
}

// Get returns the spans of a stored trace (nil when unknown).
func (ts *TraceStore) Get(traceID string) []Span {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	spans := ts.traces[traceID]
	out := make([]Span, len(spans))
	copy(out, spans)
	return out
}

// WriteChromeTrace renders a stored trace in the Chrome trace_event
// format: one "X" event per span, processes named by their Proc label
// (pid 1 = the local process), timestamps rebased to the earliest span.
// Returns false when the trace id is unknown.
func (ts *TraceStore) WriteChromeTrace(w io.Writer, traceID string) (bool, error) {
	spans := ts.Get(traceID)
	if len(spans) == 0 {
		return false, nil
	}
	var t0 int64 = spans[0].StartUnixNS
	procs := map[string]int{"": 1}
	procOrder := []string{""}
	for _, sp := range spans {
		if sp.StartUnixNS < t0 {
			t0 = sp.StartUnixNS
		}
		if _, ok := procs[sp.Proc]; !ok {
			procs[sp.Proc] = len(procs) + 1
			procOrder = append(procOrder, sp.Proc)
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return true, err
	}
	first := true
	comma := func() error {
		if first {
			first = false
			return nil
		}
		return bw.WriteByte(',')
	}
	for _, proc := range procOrder {
		name := proc
		if name == "" {
			name = "local"
		}
		if err := comma(); err != nil {
			return true, err
		}
		if _, err := fmt.Fprintf(bw,
			`{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`,
			procs[proc], strconv.Quote(name)); err != nil {
			return true, err
		}
	}
	for _, sp := range spans {
		if err := comma(); err != nil {
			return true, err
		}
		if _, err := fmt.Fprintf(bw,
			`{"name":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"args":{"span_id":%s,"parent_id":%s%s}}`,
			strconv.Quote(sp.Name), procs[sp.Proc], sp.Worker,
			formatMicros(sp.StartUnixNS-t0), formatMicros(sp.DurNS),
			strconv.Quote(sp.SpanID), strconv.Quote(sp.ParentID),
			attrArgs(sp.Attrs)); err != nil {
			return true, err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return true, err
	}
	return true, bw.Flush()
}

// attrArgs renders span attrs as extra JSON object members (",k":"v"...)
// in sorted key order.
func attrArgs(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b []byte
	for _, k := range keys {
		b = append(b, ',')
		b = strconv.AppendQuote(b, k)
		b = append(b, ':')
		b = strconv.AppendQuote(b, attrs[k])
	}
	return string(b)
}

// reqTraceKey is the context key carrying the request's ReqTrace.
type reqTraceKey struct{}

// WithReqTrace returns a context carrying rt.
func WithReqTrace(ctx context.Context, rt *ReqTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, rt)
}

// ReqTraceFrom extracts the request's ReqTrace (nil when absent — all
// ReqTrace methods tolerate nil, so handlers use it unconditionally).
func ReqTraceFrom(ctx context.Context) *ReqTrace {
	rt, _ := ctx.Value(reqTraceKey{}).(*ReqTrace)
	return rt
}
