package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceContextRoundtrip(t *testing.T) {
	tc := NewTraceContext()
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("unexpected id lengths: trace %q span %q", tc.TraceID, tc.SpanID)
	}
	got, ok := ParseTraceparent(tc.Traceparent())
	if !ok || got != tc {
		t.Fatalf("roundtrip: ParseTraceparent(%q) = %+v, %v", tc.Traceparent(), got, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"",
		"00-short-span-01",
		"00-00000000000000000000000000000000-0000000000000000-01", // all-zero ids
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-1111111111111111-01", // non-hex
		"no-dashes",
	} {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
}

func TestTraceFromRequestPrecedence(t *testing.T) {
	// traceparent wins and its span id becomes the parent.
	in := NewTraceContext()
	r := httptest.NewRequest("POST", "/v1/count", nil)
	r.Header.Set("traceparent", in.Traceparent())
	r.Header.Set("X-Request-ID", "ignored-when-traceparent-present")
	tc, parent := TraceFromRequest(r)
	if tc.TraceID != in.TraceID {
		t.Fatalf("traceparent trace id not honored: got %q want %q", tc.TraceID, in.TraceID)
	}
	if parent != in.SpanID {
		t.Fatalf("parent = %q, want the incoming span id %q", parent, in.SpanID)
	}
	if tc.SpanID == in.SpanID {
		t.Fatal("server span id must be fresh, not the client's")
	}

	// A 32-hex X-Request-ID is used directly as the trace id.
	r = httptest.NewRequest("POST", "/v1/count", nil)
	r.Header.Set("X-Request-ID", "ABCDEF00112233445566778899aabbcc")
	tc, parent = TraceFromRequest(r)
	if tc.TraceID != "abcdef00112233445566778899aabbcc" || parent != "" {
		t.Fatalf("hex request id: got trace %q parent %q", tc.TraceID, parent)
	}

	// An arbitrary X-Request-ID hashes to a stable trace id.
	r = httptest.NewRequest("POST", "/v1/count", nil)
	r.Header.Set("X-Request-ID", "req-42")
	first, _ := TraceFromRequest(r)
	second, _ := TraceFromRequest(r)
	if first.TraceID != second.TraceID || len(first.TraceID) != 32 {
		t.Fatalf("request id hashing not stable: %q vs %q", first.TraceID, second.TraceID)
	}

	// No headers: a fresh mint.
	r = httptest.NewRequest("POST", "/v1/count", nil)
	tc, parent = TraceFromRequest(r)
	if len(tc.TraceID) != 32 || parent != "" {
		t.Fatalf("fresh mint: got trace %q parent %q", tc.TraceID, parent)
	}
}

// TestReqTraceMergedExplain exercises the coordinator's assembly path:
// local spans plus an imported shard fragment whose root names the
// coordinator's call span as parent must come out as one tree.
func TestReqTraceMergedExplain(t *testing.T) {
	tc := NewTraceContext()
	rt := NewReqTrace(tc, "gather.count", "")
	rt.Annotate("priority", "normal")

	call := rt.Begin("shard.call", rt.RootID())
	call.Set("shard", "http://s1")

	// The shard-side fragment, as a worker would return it: its root is
	// parented under the coordinator's call span.
	shardRoot := Span{
		Name: "http.count", TraceID: tc.TraceID, SpanID: NewSpanID(),
		ParentID: call.ID(), StartUnixNS: time.Now().UnixNano(), DurNS: 1000,
	}
	shardChild := Span{
		Name: "mine", TraceID: tc.TraceID, SpanID: NewSpanID(),
		ParentID: shardRoot.SpanID, StartUnixNS: shardRoot.StartUnixNS + 10, DurNS: 900,
	}
	foreign := Span{Name: "other", TraceID: strings.Repeat("f", 32), SpanID: NewSpanID()}
	rt.Import([]Span{shardRoot, shardChild, foreign}, "http://s1")
	call.End()
	rt.Finish()

	spans := rt.Spans()
	for _, sp := range spans {
		if sp.TraceID != tc.TraceID {
			t.Fatalf("foreign-trace span %q leaked into the merged set", sp.Name)
		}
	}
	if got := len(spans); got != 4 { // root + call + 2 imported
		t.Fatalf("merged span count = %d, want 4", got)
	}

	tree := BuildExplain(spans)
	if tree == nil || tree.Name != "gather.count" {
		t.Fatalf("explain root = %+v, want gather.count", tree)
	}
	if tree.Attrs["priority"] != "normal" {
		t.Fatalf("root attrs lost: %v", tree.Attrs)
	}
	if len(tree.Children) != 1 || tree.Children[0].Name != "shard.call" {
		t.Fatalf("want shard.call under root, got %+v", tree.Children)
	}
	callNode := tree.Children[0]
	if len(callNode.Children) != 1 || callNode.Children[0].Name != "http.count" {
		t.Fatalf("shard root not linked under call span: %+v", callNode.Children)
	}
	if callNode.Children[0].Proc != "http://s1" {
		t.Fatalf("imported span proc = %q, want shard URL", callNode.Children[0].Proc)
	}
	if len(callNode.Children[0].Children) != 1 || callNode.Children[0].Children[0].Name != "mine" {
		t.Fatalf("shard child not nested: %+v", callNode.Children[0].Children)
	}
}

func TestTraceStoreMergeAndEvict(t *testing.T) {
	ts := NewTraceStore(8)
	id := strings.Repeat("a", 32)
	ts.Add(id, []Span{{Name: "root", TraceID: id, SpanID: "1111111111111111"}})
	ts.Add(id, []Span{{Name: "late-frag", TraceID: id, SpanID: "2222222222222222"}})
	if got := len(ts.Get(id)); got != 2 {
		t.Fatalf("late fragment not merged: %d spans", got)
	}
	for i := 0; i < 8; i++ {
		ts.Add(strings.Repeat("b", 31)+string(rune('0'+i)), []Span{{Name: "x", SpanID: "3333333333333333"}})
	}
	if got := ts.Get(id); got != nil && len(got) != 0 {
		t.Fatalf("oldest trace not evicted at capacity: %d spans remain", len(got))
	}
}

func TestWriteChromeTrace(t *testing.T) {
	ts := NewTraceStore(8)
	id := strings.Repeat("c", 32)
	now := time.Now().UnixNano()
	ts.Add(id, []Span{
		{Name: "gather.count", TraceID: id, SpanID: "aaaaaaaaaaaaaaaa", StartUnixNS: now, DurNS: 5000},
		{Name: "http.count", TraceID: id, SpanID: "bbbbbbbbbbbbbbbb", ParentID: "aaaaaaaaaaaaaaaa",
			Proc: "http://s1", StartUnixNS: now + 100, DurNS: 4000, Attrs: map[string]string{"engine": "exact"}},
	})
	var buf bytes.Buffer
	found, err := ts.WriteChromeTrace(&buf, id)
	if err != nil || !found {
		t.Fatalf("WriteChromeTrace: found=%v err=%v", found, err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var metas, spans int
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
		case "X":
			spans++
			pids[ev.Pid] = true
			if ev.Args["span_id"] == "" {
				t.Fatalf("span event without span_id: %+v", ev)
			}
		}
	}
	if metas != 2 || spans != 2 {
		t.Fatalf("want 2 process metas + 2 span events, got %d + %d", metas, spans)
	}
	if len(pids) != 2 {
		t.Fatalf("local and shard spans should land in distinct pids, got %v", pids)
	}
	if ok, _ := ts.WriteChromeTrace(&buf, strings.Repeat("d", 32)); ok {
		t.Fatal("unknown trace id reported found")
	}
}

func TestAccessLogger(t *testing.T) {
	var buf bytes.Buffer
	al := NewAccessLogger(&buf)
	al.Log(AccessRecord{TraceID: strings.Repeat("e", 32), Route: "count", Status: 200, Outcome: "ok", WallMS: 1.25})
	al.Log(AccessRecord{Route: "count", Status: 429, Outcome: "shed", Shed: true})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 log lines, got %d: %q", len(lines), buf.String())
	}
	var rec AccessRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v", err)
	}
	if rec.TraceID != strings.Repeat("e", 32) || rec.Outcome != "ok" {
		t.Fatalf("roundtrip mismatch: %+v", rec)
	}
	// nil logger is a no-op, not a panic.
	var nilLogger *AccessLogger
	nilLogger.Log(AccessRecord{})
	if NewAccessLogger(nil) != nil {
		t.Fatal("NewAccessLogger(nil) should return nil")
	}
}
