package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestLabeledKey(t *testing.T) {
	if got := Labeled("breaker.state", "workload", "g1/M1"); got != `breaker.state{workload="g1/M1"}` {
		t.Fatalf("Labeled = %q", got)
	}
	if got := Labeled("x", "k", `a"b\c`); got != `x{k="a\"b\\c"}` {
		t.Fatalf("escaping: %q", got)
	}
	if got := Labeled("bare"); got != "bare" {
		t.Fatalf("no labels: %q", got)
	}
}

// TestWritePrometheusAgainstLint renders a registry holding every
// instrument kind — including a labeled series as the serving layer
// writes them — and checks both that the linter accepts the output and
// that the expected sample lines are present.
func TestWritePrometheusAgainstLint(t *testing.T) {
	reg := New("mintd")
	reg.Counter("admission.shed").Add(3)
	reg.Gauge("admission.queued").Set(2)
	reg.Gauge(Labeled("breaker.state", "workload", "email-eu/M1")).Set(1)
	for _, v := range []int64{100, 1000, 100000} {
		reg.Histogram("http.count.latency_ns").Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	n, err := LintPrometheus(text)
	if err != nil {
		t.Fatalf("rendered exposition fails lint: %v\n%s", err, text)
	}
	if n == 0 {
		t.Fatal("no samples rendered")
	}
	for _, want := range []string{
		"mintd_admission_shed 3",
		"mintd_admission_queued 2",
		`mintd_breaker_state{workload="email-eu/M1"} 1`,
		"# TYPE mintd_http_count_latency_ns histogram",
		`mintd_http_count_latency_ns_bucket{le="+Inf"} 3`,
		"mintd_http_count_latency_ns_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in exposition:\n%s", want, text)
		}
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	reg := New("")
	h := reg.Histogram("d")
	h.Observe(1) // bucket [1,1]
	h.Observe(1)
	h.Observe(5) // bucket [4,7]
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `d_bucket{le="1"} 2`) {
		t.Fatalf("first bucket not cumulative-from-zero:\n%s", text)
	}
	if !strings.Contains(text, `d_bucket{le="7"} 3`) {
		t.Fatalf("second bucket must include earlier observations:\n%s", text)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := New("svc")
	reg.Counter("reqs").Add(1)
	rr := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	if _, err := LintPrometheus(rr.Body.String()); err != nil {
		t.Fatalf("handler output fails lint: %v", err)
	}
}

func TestLintPrometheusCatchesBadText(t *testing.T) {
	for _, bad := range []string{
		"1leading_digit 5\n",
		"name{unterminated=\"x\n",
		"name not_a_number\n",
		"",
	} {
		if _, err := LintPrometheus(bad); err == nil {
			t.Errorf("lint accepted %q", bad)
		}
	}
}
