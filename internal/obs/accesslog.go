package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AccessRecord is one structured access-log line: the request's trace
// identity, route, outcome, and the loud-degradation markers the
// response contract guarantees (shed / degraded / partial / truncated
// are never silent, so they are never absent from the log either).
type AccessRecord struct {
	Time      string  `json:"ts"`
	TraceID   string  `json:"trace_id"`
	Route     string  `json:"route"`
	Status    int     `json:"status"`
	Priority  string  `json:"priority,omitempty"`
	Outcome   string  `json:"outcome"`
	Shed      bool    `json:"shed,omitempty"`
	Degraded  bool    `json:"degraded,omitempty"`
	Partial   bool    `json:"partial,omitempty"`
	Truncated bool    `json:"truncated,omitempty"`
	WallMS    float64 `json:"wall_ms"`
}

// AccessLogger writes one JSON line per request to an io.Writer.
// Concurrent-safe; nil-safe (a nil logger drops records).
type AccessLogger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewAccessLogger wraps w; returns nil (logging disabled) when w is nil.
func NewAccessLogger(w io.Writer) *AccessLogger {
	if w == nil {
		return nil
	}
	return &AccessLogger{w: w}
}

// Log writes rec as one JSON line, stamping Time if unset.
func (l *AccessLogger) Log(rec AccessRecord) {
	if l == nil {
		return
	}
	if rec.Time == "" {
		rec.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b) //nolint:errcheck // best-effort log line
	l.mu.Unlock()
}
