package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// published guards against double expvar.Publish (which panics) when
// several servers or tests publish registries with the same name.
var published sync.Map // registry name -> struct{}

// Publish exposes the registry's live snapshot as an expvar variable
// under the registry's name, making it part of every /debug/vars dump.
// Publishing the same name twice keeps the first binding.
func Publish(r *Registry) {
	if r == nil || r.Name() == "" {
		return
	}
	if _, loaded := published.LoadOrStore(r.Name(), struct{}{}); loaded {
		return
	}
	expvar.Publish(r.Name(), expvar.Func(func() any { return r.Snapshot() }))
}

// AttachDebug publishes the registries and mounts the observability
// endpoints — expvar-compatible JSON at /debug/vars, Prometheus text
// format at /metrics, and the full net/http/pprof suite at
// /debug/pprof/ — on an existing mux, so a long-lived server (mintd)
// can expose them on its own listener instead of running a second one.
func AttachDebug(mux *http.ServeMux, regs ...*Registry) {
	for _, r := range regs {
		Publish(r)
	}
	mux.Handle("GET /metrics", MetricsHandler(regs...))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Server is a live observability endpoint: expvar-compatible JSON at
// /debug/vars (the published registries folded on every request) plus
// the full net/http/pprof suite at /debug/pprof/.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve publishes the given registries and starts an HTTP server on
// addr (":0" picks a free port; query Addr for the binding). The server
// runs until Close or Shutdown.
func Serve(addr string, regs ...*Registry) (*Server, error) {
	mux := http.NewServeMux()
	AttachDebug(mux, regs...)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return s, nil
}

// Addr returns the server's bound address ("127.0.0.1:41234").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server immediately, dropping in-flight scrapes.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown closes the listener and then waits for in-flight scrapes to
// finish (bounded by ctx) — the drain-path counterpart of Close, so a
// process exiting cleanly never yanks a half-written /debug/vars
// response or leaks the listener. Safe to call after Close. Nil-safe:
// callers that may not have started a server can call it untested.
func (s *Server) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}
