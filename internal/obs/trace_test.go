package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// timeNowForTest keeps obs_test free of a direct time import cycle.
func timeNowForTest() time.Time { return time.Now() }

func TestTracerRetainsInOrder(t *testing.T) {
	tr := NewTracer(16)
	base := time.Now()
	for i := 0; i < 10; i++ {
		tr.Emit("ev", int32(i), base.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	evs := tr.Events()
	if len(evs) != 10 || tr.Total() != 10 {
		t.Fatalf("events=%d total=%d", len(evs), tr.Total())
	}
	for i, ev := range evs {
		if ev.Worker != int32(i) {
			t.Fatalf("event %d out of order: worker=%d", i, ev.Worker)
		}
	}
}

func TestTracerWraparound(t *testing.T) {
	tr := NewTracer(16)
	base := time.Now()
	for i := 0; i < 40; i++ {
		tr.Emit("ev", int32(i), base, 0)
	}
	evs := tr.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want ring capacity 16", len(evs))
	}
	if tr.Total() != 40 {
		t.Fatalf("total = %d, want 40", tr.Total())
	}
	// Oldest retained is event 24, newest is 39, in order.
	for i, ev := range evs {
		if ev.Worker != int32(24+i) {
			t.Fatalf("slot %d holds worker %d, want %d", i, ev.Worker, 24+i)
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Span("span", int32(w), time.Now())
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != 800 {
		t.Fatalf("total = %d, want 800", tr.Total())
	}
	if len(tr.Events()) != 64 {
		t.Fatalf("retained %d, want 64", len(tr.Events()))
	}
}

// TestChromeTraceFormat checks that the dump is valid JSON in the Trace
// Event Format: a traceEvents array of complete ("X") events with
// microsecond timestamps.
func TestChromeTraceFormat(t *testing.T) {
	tr := NewTracer(16)
	base := time.Now()
	tr.Emit("mine.worker", 3, base, 1500*time.Microsecond)
	tr.Emit(`na"me`, 0, base.Add(2*time.Millisecond), 0) // quoting survives
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "mine.worker" || ev.Ph != "X" || ev.Tid != 3 {
		t.Fatalf("event mangled: %+v", ev)
	}
	if ev.Dur < 1499 || ev.Dur > 1501 {
		t.Fatalf("dur = %v µs, want ~1500", ev.Dur)
	}
	if doc.TraceEvents[1].Name != `na"me` {
		t.Fatalf("quoted name mangled: %q", doc.TraceEvents[1].Name)
	}
}
