// Package obs is the zero-dependency observability substrate of the
// repository: atomic counters, gauges, and log2-bucket histograms grouped
// into named registries, a low-overhead ring-buffer event tracer with a
// Chrome trace_event exporter, a structured end-of-run report
// (RunReport), and an expvar/pprof HTTP exporter.
//
// The paper's evaluation (Figs 2 and 7, the Fig 10–13 sweeps) is built
// from workload characterization — candidate scans, memory touches,
// branch behavior, task-queue occupancy. This package gives every engine
// in the repository one shared schema for those measurements so that a
// perf PR can prove its effect from emitted metrics instead of ad-hoc
// prints, and so a truncated or cancelled run can be diagnosed after the
// fact from its RunReport.
//
// # Hot-path contract
//
// Counters are sharded: writers add into per-worker cache-line-padded
// slots (AddShard) and the shards are folded only at snapshot time, so
// the miners' inner loops never contend on a shared cache line. The
// miners go one step further and fold their existing private Stats
// structs into the registry once per run — the per-event cost of
// instrumentation-enabled mining is therefore zero, which the
// TestObsOverheadGuard benchmark guard in internal/mackey enforces
// (<3% on the sequential miner).
//
// Every method on Registry, Counter, Gauge, Histogram, and Tracer is
// nil-receiver-safe: a nil registry hands out nil instruments whose
// mutators are no-ops, so call sites need no "is observability on?"
// branches.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// NumShards is the number of independent slots of a sharded Counter.
// Workers address shards by worker index (wrapped); 16 covers the
// parallelism of the evaluated machines without bloating snapshots.
const NumShards = 16

// counterShard is one cache-line-padded counter slot.
type counterShard struct {
	v atomic.Int64
	_ [56]byte // pad to 64 B so adjacent shards never share a line
}

// Counter is a monotonically increasing, sharded counter.
type Counter struct {
	shards [NumShards]counterShard
}

// Add increments the counter by d (shard 0). Use AddShard from
// per-worker code so concurrent writers land on distinct cache lines.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.shards[0].v.Add(d)
}

// AddShard increments the counter by d in the given worker's shard.
// Any shard index is legal; it is wrapped into range.
func (c *Counter) AddShard(shard int, d int64) {
	if c == nil {
		return
	}
	c.shards[shard&(NumShards-1)].v.Add(d)
}

// Value folds the shards and returns the current total.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is an instantaneous value (queue depth, budget remaining, ...).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d and returns the new value.
func (g *Gauge) Add(d int64) int64 {
	if g == nil {
		return 0
	}
	return g.v.Add(d)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of a Histogram: bucket 0 holds
// values ≤ 0 and bucket i (1 ≤ i ≤ 63) holds values in [2^(i-1), 2^i).
const histBuckets = 64

// Histogram is a fixed-geometry log2 histogram. Observe is one atomic
// add plus a bits.Len64, so it is safe (if not free) on warm paths;
// the miners only observe per-run and per-worker quantities.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket: 0 for v ≤ 0, else
// bits.Len64(v) (so 1→1, 2..3→2, 4..7→3, ...).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketRange returns the inclusive value range of bucket i.
func BucketRange(i int) (lo, hi int64) {
	if i <= 0 {
		return -1 << 62, 0
	}
	return 1 << (i - 1), 1<<i - 1
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Registry is a named collection of instruments. Instruments are created
// on first use and live for the registry's lifetime; all methods are safe
// for concurrent use, including on a nil receiver (which hands out nil,
// no-op instruments).
type Registry struct {
	name string

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New creates an empty registry with the given name (the key it is
// published under in the expvar snapshot).
func New(name string) *Registry {
	return &Registry{
		name:     name,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Name returns the registry's name ("" for nil).
func (r *Registry) Name() string {
	if r == nil {
		return ""
	}
	return r.name
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Bucket is one populated histogram bucket in a snapshot: N observations
// in the inclusive value range [Lo, Hi].
type Bucket struct {
	Lo int64 `json:"lo"`
	Hi int64 `json:"hi"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is the folded state of one histogram. Only populated
// buckets appear, in ascending value order.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is the folded state of a whole registry at one instant.
type Snapshot struct {
	Name       string                       `json:"name,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot folds every instrument (summing counter shards) into a
// point-in-time copy. Concurrent writers keep writing; the snapshot is
// internally consistent per instrument, not across instruments.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	s.Name = r.name
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapshotHistogram(h)
	}
	return s
}

func snapshotHistogram(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			lo, hi := BucketRange(i)
			hs.Buckets = append(hs.Buckets, Bucket{Lo: lo, Hi: hi, N: n})
		}
	}
	return hs
}

// Counter returns the snapshot value of a counter (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Delta returns the change from prev to s: counters and histogram
// buckets are subtracted (clamped at ≥ 0 per entry); gauges keep their
// value in s, since a gauge is instantaneous rather than cumulative.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{
		Name:       s.Name,
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		if dv := v - prev.Counters[name]; dv > 0 {
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		dh := deltaHistogram(h, prev.Histograms[name])
		if dh.Count > 0 {
			d.Histograms[name] = dh
		}
	}
	return d
}

func deltaHistogram(cur, prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Count: cur.Count - prev.Count, Sum: cur.Sum - prev.Sum}
	prevByLo := map[int64]int64{}
	for _, b := range prev.Buckets {
		prevByLo[b.Lo] = b.N
	}
	for _, b := range cur.Buckets {
		if n := b.N - prevByLo[b.Lo]; n > 0 {
			d.Buckets = append(d.Buckets, Bucket{Lo: b.Lo, Hi: b.Hi, N: n})
		}
	}
	sort.Slice(d.Buckets, func(i, j int) bool { return d.Buckets[i].Lo < d.Buckets[j].Lo })
	return d
}
