package experiments

import (
	"fmt"
	"math"

	"mint/internal/datasets"
	"mint/internal/mackey"
	"mint/internal/temporal"
)

// DeltaSweep is an extension experiment (not a paper figure): it verifies
// the complexity law of §III-A, O(|E_G| · k^(|E_M|−1)), by sweeping the
// time window δ — which scales k linearly — and recording the software
// miner's work and match counts for M1 (3 edges → expected quadratic
// growth in k) and M4's 4-edge star (expected cubic). The harness prints
// the observed growth exponent between successive δ doublings.
func DeltaSweep(cfg Config) error {
	w := cfg.out()
	header(w, "Extension: work vs δ — the O(|E|·k^(|E_M|-1)) law of §III-A")
	spec, err := datasets.ByName("su")
	if err != nil {
		return err
	}
	g, err := cfg.dataset(spec)
	if err != nil {
		return err
	}

	deltas := []temporal.Timestamp{900, 1800, 3600, 7200, 14400}
	if cfg.Quick {
		deltas = deltas[:3]
	}
	rows := [][]string{{"motif", "delta_s", "k", "work", "matches", "growth_exponent"}}
	for _, base := range []*temporal.Motif{temporal.M1(1), temporal.M4(1)} {
		fmt.Fprintf(w, "%s (|E_M|=%d → k-exponent ≤ %d):\n", base.Name, base.NumEdges(), base.NumEdges()-1)
		fmt.Fprintf(w, "  %8s %10s %14s %12s %10s\n", "δ (s)", "k", "work", "matches", "exp")
		prevWork, prevK := 0.0, 0.0
		for _, d := range deltas {
			m := base.WithDelta(d)
			res := mackey.Mine(g, m, cfg.minerOpts())
			work := float64(res.Stats.CandidateEdges + res.Stats.BookkeepTasks)
			k := g.EdgesPerDelta(d)
			expStr := "-"
			if prevWork > 0 && work > prevWork && k > prevK {
				// work ∝ k^e  →  e = Δlog(work)/Δlog(k)
				e := (math.Log(work) - math.Log(prevWork)) / (math.Log(k) - math.Log(prevK))
				expStr = fmt.Sprintf("%.2f", e)
			}
			fmt.Fprintf(w, "  %8d %10.1f %14.0f %12d %10s\n", d, k, work, res.Matches, expStr)
			rows = append(rows, []string{base.Name, fmt.Sprint(d), fmt.Sprintf("%.2f", k),
				fmt.Sprintf("%.0f", work), fmt.Sprint(res.Matches), expStr})
			prevWork, prevK = work, k
		}
	}
	fmt.Fprintln(w, "(total work = |E|·(c₀ + c·k^e): the measured exponent of the k-sensitive part")
	fmt.Fprintln(w, " rises with δ and is consistently higher for the deeper motif — M4's marginal")
	fmt.Fprintln(w, " exponent exceeds M1's at every δ, and its match count grows ≈cubically in k)")
	return cfg.writeCSV("deltasweep", rows)
}
