package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickConfig returns a tiny configuration for smoke tests.
func quickConfig(t *testing.T) Config {
	t.Helper()
	cfg := Default()
	cfg.Quick = true
	cfg.MaxEdges = 2000
	cfg.Out = &bytes.Buffer{}
	cfg.OutDir = t.TempDir()
	return cfg
}

func output(cfg Config) string { return cfg.Out.(*bytes.Buffer).String() }

func TestTable1(t *testing.T) {
	cfg := quickConfig(t)
	if err := Table1(cfg); err != nil {
		t.Fatal(err)
	}
	out := output(cfg)
	if !strings.Contains(out, "email-eu") {
		t.Fatalf("missing dataset row:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "table1.csv")); err != nil {
		t.Fatal("table1.csv not written")
	}
}

func TestTable2(t *testing.T) {
	cfg := quickConfig(t)
	if err := Table2(cfg); err != nil {
		t.Fatal(err)
	}
	out := output(cfg)
	for _, want := range []string{"Task Queue", "Context Memory", "DDR4-3200"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in Table II output", want)
		}
	}
}

func TestFig2(t *testing.T) {
	cfg := quickConfig(t)
	if err := Fig2(cfg); err != nil {
		t.Fatal(err)
	}
	out := output(cfg)
	if !strings.Contains(out, "dram-stall") {
		t.Fatalf("missing CPI stack:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "fig2_cpistack.csv")); err != nil {
		t.Fatal("fig2_cpistack.csv not written")
	}
}

func TestFig7(t *testing.T) {
	cfg := quickConfig(t)
	if err := Fig7(cfg); err != nil {
		t.Fatal(err)
	}
	out := output(cfg)
	if !strings.Contains(out, "node1") {
		t.Fatalf("missing utilization series:\n%s", out)
	}
	if strings.Contains(out, "WARNING") {
		t.Logf("utilization did not decay in quick mode:\n%s", out)
	}
}

func TestFig10(t *testing.T) {
	cfg := quickConfig(t)
	if err := Fig10(cfg); err != nil {
		t.Fatal(err)
	}
	out := output(cfg)
	if !strings.Contains(out, "geomean speedup w/  memo") {
		t.Fatalf("missing geomean:\n%s", out)
	}
}

func TestFig11(t *testing.T) {
	cfg := quickConfig(t)
	if err := Fig11(cfg); err != nil {
		t.Fatal(err)
	}
	out := output(cfg)
	for _, want := range []string{"vs Mackey CPU", "vs PRESTO", "vs Mackey GPU"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestFig12(t *testing.T) {
	cfg := quickConfig(t)
	if err := Fig12(cfg); err != nil {
		t.Fatal(err)
	}
	out := output(cfg)
	if !strings.Contains(out, "flexminer") && !strings.Contains(out, "FlexMiner") {
		t.Fatalf("missing FlexMiner comparison:\n%s", out)
	}
}

func TestFig13(t *testing.T) {
	cfg := quickConfig(t)
	if err := Fig13(cfg); err != nil {
		t.Fatal(err)
	}
	out := output(cfg)
	if !strings.Contains(out, "Speedup (x)") || !strings.Contains(out, "Cache hit rate") {
		t.Fatalf("missing panels:\n%s", out)
	}
}

func TestFig14(t *testing.T) {
	cfg := quickConfig(t)
	if err := Fig14(cfg); err != nil {
		t.Fatal(err)
	}
	out := output(cfg)
	if !strings.Contains(out, "Total") || !strings.Contains(out, "Crossbar") {
		t.Fatalf("missing rows:\n%s", out)
	}
}

func TestDeltaSweep(t *testing.T) {
	cfg := quickConfig(t)
	if err := DeltaSweep(cfg); err != nil {
		t.Fatal(err)
	}
	out := output(cfg)
	if !strings.Contains(out, "growth exponent") && !strings.Contains(out, "marginal") {
		t.Fatalf("missing sweep output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(cfg.OutDir, "deltasweep.csv")); err != nil {
		t.Fatal("deltasweep.csv not written")
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness smoke test skipped in -short")
	}
	cfg := quickConfig(t)
	if err := All(cfg); err != nil {
		t.Fatal(err)
	}
	// Every CSV of the run must exist.
	for _, name := range []string{"table1", "fig2_scaling", "fig2_cpistack",
		"fig7", "fig10", "fig11", "fig12", "fig13", "fig14"} {
		if _, err := os.Stat(filepath.Join(cfg.OutDir, name+".csv")); err != nil {
			t.Errorf("missing %s.csv", name)
		}
	}
}
