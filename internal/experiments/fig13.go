package experiments

import (
	"fmt"

	"mint/internal/datasets"
	hw "mint/internal/mint"
)

// Fig13 reproduces the sensitivity sweep: performance (normalized to 1 PE
// with a 1 MB cache), average DRAM bandwidth utilization, and cache hit
// rate while varying the number of processing engines and the cache size,
// for M1 mining on wiki-talk. Paper headline: 1024 PEs + 4 MB reaches
// 75.7× over the 1 PE/1 MB baseline; more PEs shift the workload from
// compute- to memory-bound, trading hit rate for bandwidth.
func Fig13(cfg Config) error {
	w := cfg.out()
	header(w, "Fig 13: sensitivity to PE count and cache size (M1 on wiki-talk)")
	spec, err := datasets.ByName("wt")
	if err != nil {
		return err
	}
	m1 := cfg.motifs()[0]
	// The memoization-study operating point (shared with Fig 10): large
	// enough that the scaled 1/2/4 MB-equivalent cache sweep stays above
	// the simulator's minimum geometry and the cache dimension is visible.
	g, err := cfg.largeWorkload(spec, m1)
	if err != nil {
		return err
	}

	pes := []int{1, 4, 16, 64, 256, 512, 1024}
	// Cache sizes are scaled equivalents of the paper's 1/2/4 MB sweep,
	// preserving the cache:working-set proportion on the scaled dataset.
	cachesMB := []int{1, 2, 4}
	if cfg.Quick {
		pes = []int{1, 4, 16}
		cachesMB = []int{1, 2}
	}

	type cell struct {
		seconds float64
		bw      float64
		hit     float64
	}
	results := make(map[[2]int]cell, len(pes)*len(cachesMB))
	for _, pe := range pes {
		for _, mb := range cachesMB {
			c := hw.DefaultConfig()
			c.Obs = cfg.Obs
			// Fewer banks than Table II so the scaled (100× smaller)
			// capacities land on distinct set counts; bank count is not
			// the swept variable.
			c.Cache.Banks = 16
			minBytes := c.Cache.Banks * c.Cache.LineBytes * c.Cache.Ways
			c.Cache.BankBytes = scaledCacheBytes(g, float64(mb)/4, minBytes) / c.Cache.Banks
			c.PEs = pe
			res, err := hw.Simulate(g, m1, c)
			if err != nil {
				return err
			}
			results[[2]int{pe, mb}] = cell{res.Seconds, res.BandwidthUtil, res.CacheHitRate}
		}
	}
	base := results[[2]int{pes[0], cachesMB[0]}].seconds

	rows := [][]string{{"pes", "cache_mb", "speedup", "bandwidth_pct", "hitrate_pct"}}
	for _, metric := range []string{"Speedup (x)", "Bandwidth (% of peak)", "Cache hit rate (%)"} {
		fmt.Fprintf(w, "\n%s\n%-6s", metric, "PEs")
		for _, mb := range cachesMB {
			fmt.Fprintf(w, " %8dMB", mb)
		}
		fmt.Fprintln(w)
		for _, pe := range pes {
			fmt.Fprintf(w, "%-6d", pe)
			for _, mb := range cachesMB {
				c := results[[2]int{pe, mb}]
				switch metric {
				case "Speedup (x)":
					fmt.Fprintf(w, " %10.1f", base/c.seconds)
				case "Bandwidth (% of peak)":
					fmt.Fprintf(w, " %10.1f", c.bw*100)
				default:
					fmt.Fprintf(w, " %10.1f", c.hit*100)
				}
			}
			fmt.Fprintln(w)
		}
	}
	for _, pe := range pes {
		for _, mb := range cachesMB {
			c := results[[2]int{pe, mb}]
			rows = append(rows, []string{
				fmt.Sprint(pe), fmt.Sprint(mb),
				fmt.Sprintf("%.2f", base/c.seconds),
				fmt.Sprintf("%.1f", c.bw*100),
				fmt.Sprintf("%.1f", c.hit*100),
			})
		}
	}
	fmt.Fprintln(w, "\n(paper: 1024 PE / 4 MB reaches 75.7x over 1 PE / 1 MB; hit rate falls as PEs rise)")
	return cfg.writeCSV("fig13", rows)
}
