package experiments

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mint/internal/obs"
)

// TestSummarizeAggregatesEngines: the summary must sum matches across
// miner, task runtime, and simulator namespaces and flag truncation if
// any engine truncated.
func TestSummarizeAggregatesEngines(t *testing.T) {
	reg := obs.New("exp_report_test")
	reg.Counter("mackey.matches").Add(5)
	reg.Counter("task.matches").Add(7)
	reg.Counter("sim.matches").Add(11)
	reg.Counter("mackey.nodes_expanded").Add(42)
	reg.Counter("sim.cycles").Add(1000)
	prev := reg.Snapshot()
	reg.Counter("mackey.matches").Add(3)
	reg.Counter("sim.truncated_runs").Add(1)

	s := Summarize("fig99", reg.Snapshot().Delta(prev), 2*time.Second)
	if s.Matches != 3 {
		t.Errorf("delta matches = %d, want 3 (pre-existing counts must not leak in)", s.Matches)
	}
	if s.Expansions != 0 || s.SimCycles != 0 {
		t.Errorf("expansions/cycles = %d/%d, want 0/0", s.Expansions, s.SimCycles)
	}
	if !s.Truncated {
		t.Error("truncated run not reflected in summary")
	}
	line := s.Line()
	for _, want := range []string{"fig99", "matches=3", "truncated=yes"} {
		if !strings.Contains(line, want) {
			t.Errorf("summary line %q missing %q", line, want)
		}
	}
}

// TestWriteReportRoundTrip: the per-experiment report lands in OutDir
// and reads back with the counters intact.
func TestWriteReportRoundTrip(t *testing.T) {
	reg := obs.New("exp_report_rt")
	reg.Counter("mackey.matches").Add(9)
	delta := reg.Snapshot().Delta(obs.Snapshot{})
	s := Summarize("fig7", delta, time.Second)

	cfg := Default()
	cfg.OutDir = t.TempDir()
	rep := Report(s, delta, 12345, 0.5)
	if err := cfg.WriteReport(rep); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadRunReport(filepath.Join(cfg.OutDir, "report_fig7.json"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "experiments" || got.Algo != "fig7" || got.Matches != 9 {
		t.Errorf("report round-trip = %q/%q/%d, want experiments/fig7/9", got.Tool, got.Algo, got.Matches)
	}
	if got.Counter("mackey.matches") != 9 {
		t.Errorf("counter mackey.matches = %d, want 9", got.Counter("mackey.matches"))
	}
	if got.StartUnixNano != 12345 || got.CPUSeconds != 0.5 {
		t.Errorf("start/cpu = %d/%v, want 12345/0.5", got.StartUnixNano, got.CPUSeconds)
	}
}
