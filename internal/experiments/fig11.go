package experiments

import (
	"fmt"

	"mint/internal/gpumodel"
	"mint/internal/mackey"
	hw "mint/internal/mint"
	"mint/internal/paranjape"
	"mint/internal/presto"
)

// Fig11 reproduces the headline baseline comparison: Mint (with
// memoization) versus (1) the Mackey et al. CPU baseline, (2) the same
// with software memoization, (3) Paranjape et al. (M1/M2 only, matching
// the public code's limitation), (4) PRESTO approximate sampling, and (5)
// the Mackey-on-GPU SIMT model. Paper geomeans: 363.1×, 305.9×, 2575.9×,
// 16.2×, and 9.2× respectively.
func Fig11(cfg Config) error {
	w := cfg.out()
	header(w, "Fig 11: Mint speedup vs software baselines (x = not supported)")
	fmt.Fprintf(w, "%-14s %-4s %12s %12s %12s %12s %12s\n",
		"dataset", "m", "vs cpu", "vs cpu+memo", "vs paranjape", "vs presto", "vs gpu")
	rows := [][]string{{"dataset", "motif", "mint_s", "cpu_s", "cpu_memo_s",
		"paranjape_s", "presto_s", "gpu_s"}}

	var vsCPU, vsMemo, vsPar, vsPresto, vsGPU []float64
	for _, spec := range cfg.specs() {
		for _, m := range cfg.motifs() {
			g, err := cfg.workload(spec, m)
			if err != nil {
				return err
			}
			mintRes, err := hw.Simulate(g, m, cfg.simConfigFor(g))
			if err != nil {
				return err
			}
			mintSec := mintRes.Seconds

			cpuSec := timeIt(func() { mackey.MineParallel(g, m, cfg.minerOpts()) })
			memoSec := timeIt(func() { mackey.MineParallelMemo(g, m, cfg.minerOpts()) })

			parSec := -1.0
			if m.Name == "M1" || m.Name == "M2" {
				parSec = timeIt(func() { paranjape.Count(g, m) })
				vsPar = append(vsPar, parSec/mintSec)
			}
			prestoCfg := presto.DefaultConfig()
			prestoSec := timeIt(func() {
				if _, err := presto.Estimate(g, m, prestoCfg); err != nil {
					panic(err) // config is static and valid
				}
			})
			gpu, err := gpumodel.Run(g, m, gpumodel.DefaultConfig())
			if err != nil {
				return err
			}
			if gpu.Matches != mintRes.Matches {
				return fmt.Errorf("fig11: gpu count mismatch on %s/%s", spec.Short, m.Name)
			}

			vsCPU = append(vsCPU, cpuSec/mintSec)
			vsMemo = append(vsMemo, memoSec/mintSec)
			vsPresto = append(vsPresto, prestoSec/mintSec)
			vsGPU = append(vsGPU, gpu.Seconds/mintSec)

			parCell := "x"
			if parSec >= 0 {
				parCell = fmt.Sprintf("%.1f", parSec/mintSec)
			}
			fmt.Fprintf(w, "%-14s %-4s %12.1f %12.1f %12s %12.1f %12.1f\n",
				spec.Short, m.Name, cpuSec/mintSec, memoSec/mintSec, parCell,
				prestoSec/mintSec, gpu.Seconds/mintSec)
			rows = append(rows, []string{spec.Short, m.Name,
				fmt.Sprintf("%.6f", mintSec), fmt.Sprintf("%.6f", cpuSec),
				fmt.Sprintf("%.6f", memoSec), fmt.Sprintf("%.6f", parSec),
				fmt.Sprintf("%.6f", prestoSec), fmt.Sprintf("%.6f", gpu.Seconds)})
		}
	}
	fmt.Fprintf(w, "geomean vs Mackey CPU:        %8.1fx (paper: 363.1x)\n", geomean(vsCPU))
	fmt.Fprintf(w, "geomean vs Mackey CPU w/memo: %8.1fx (paper: 305.9x)\n", geomean(vsMemo))
	fmt.Fprintf(w, "geomean vs Paranjape:         %8.1fx (paper: 2575.9x)\n", geomean(vsPar))
	fmt.Fprintf(w, "geomean vs PRESTO:            %8.1fx (paper: 16.2x)\n", geomean(vsPresto))
	fmt.Fprintf(w, "geomean vs Mackey GPU:        %8.1fx (paper: 9.2x)\n", geomean(vsGPU))
	return cfg.writeCSV("fig11", rows)
}
