package experiments

import (
	"fmt"

	"mint/internal/datasets"
)

// Table1 reproduces Table I: the six evaluation datasets. Both the paper's
// full-scale targets and the generated (scaled) statistics are printed;
// the generator preserves per-window edge density, degree skew, and
// relative dataset ordering.
func Table1(cfg Config) error {
	w := cfg.out()
	header(w, "Table I: temporal graph datasets (paper targets vs generated)")
	fmt.Fprintf(w, "%-14s %5s | %10s %12s %9s %7s | %10s %12s %9s %8s %7s\n",
		"graph", "abbr", "paper |V|", "paper |E|", "paper MB", "days",
		"gen |V|", "gen |E|", "gen MB", "gen days", "k(1h)")
	rows := [][]string{{"name", "abbr", "paper_nodes", "paper_edges", "paper_mb", "paper_days",
		"gen_nodes", "gen_edges", "gen_mb", "gen_days", "k_per_hour"}}
	paperMB := map[string]float64{"em": 7.6, "mo": 12.0, "ub": 24.5, "su": 36.0, "wt": 196.7, "so": 1493.0}
	for _, spec := range cfg.specs() {
		g, err := cfg.dataset(spec)
		if err != nil {
			return err
		}
		st := datasets.Describe(spec, g)
		k := g.EdgesPerDelta(cfg.Delta)
		fmt.Fprintf(w, "%-14s %5s | %10d %12d %9.1f %7d | %10d %12d %9.1f %8.1f %7.1f\n",
			spec.Name, spec.Short, spec.Nodes, spec.TemporalEdges, paperMB[spec.Short],
			spec.TimeSpanDays, st.Nodes, st.TemporalEdges, st.SizeMB, st.TimeSpanDays, k)
		rows = append(rows, []string{
			spec.Name, spec.Short,
			fmt.Sprint(spec.Nodes), fmt.Sprint(spec.TemporalEdges),
			fmt.Sprintf("%.1f", paperMB[spec.Short]), fmt.Sprint(spec.TimeSpanDays),
			fmt.Sprint(st.Nodes), fmt.Sprint(st.TemporalEdges),
			fmt.Sprintf("%.2f", st.SizeMB), fmt.Sprintf("%.1f", st.TimeSpanDays),
			fmt.Sprintf("%.2f", k),
		})
	}
	return cfg.writeCSV("table1", rows)
}

// Table2 reproduces Table II: the Mint system configuration as modeled.
func Table2(cfg Config) error {
	w := cfg.out()
	c := cfg.simConfig()
	header(w, "Table II: Mint system configuration")
	fmt.Fprintf(w, "%-18s %s\n", "Component", "Modeled parameters")
	fmt.Fprintf(w, "%-18s %d× context manager instances, update latency %d cycle(s)\n",
		"Context Manager", c.PEs, c.CtxUpdateLatency)
	fmt.Fprintf(w, "%-18s %d× dispatchers (latency %d), %d× two-phase search engines (%d comparators/cycle)\n",
		"Search Unit", c.PEs, c.DispatchLatency, c.PEs, c.ComparatorsPerCycle)
	fmt.Fprintf(w, "%-18s 1× queue, 1-cycle dequeue, single grant per cycle\n", "Task Queue")
	fmt.Fprintf(w, "%-18s %d× context instances (registers + eStack + node CAM), %d-cycle access\n",
		"Context Memory", c.PEs, c.CtxAccessLatency)
	fmt.Fprintf(w, "%-18s %d× banks of %d KB SRAM (%d KB total), %d-way, %d ports/bank, %d B lines, %d MSHR/bank, %d-cycle access\n",
		"On-chip Cache", c.Cache.Banks, c.Cache.BankBytes>>10, c.Cache.TotalBytes()>>10,
		c.Cache.Ways, c.Cache.PortsPerBank, c.Cache.LineBytes, c.Cache.MSHRsPerBank, c.Cache.HitLatency)
	fmt.Fprintf(w, "%-18s %d-channel DDR4-3200, %.1f GB/s peak, %.1f B/cycle/channel\n",
		"DRAM", c.DRAM.Channels,
		c.DRAM.BytesPerCyclePerChannel*float64(c.DRAM.Channels)*c.ClockGHz,
		c.DRAM.BytesPerCyclePerChannel)
	fmt.Fprintf(w, "%-18s %.1f GHz, search index memoization %v\n", "Clock", c.ClockGHz, c.Memoize)
	return nil
}
