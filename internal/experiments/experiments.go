// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII–§VIII): Table I (datasets), Table II (system
// configuration), Fig 2 (CPU characterization), Fig 7 (neighborhood
// utilization decay), Fig 10 (search index memoization), Fig 11 (baseline
// comparison), Fig 12 (static mining accelerator comparison), Fig 13
// (sensitivity), and Fig 14 (area/power).
//
// Each experiment prints a paper-style table to the configured writer and
// optionally writes a CSV under OutDir. Absolute numbers differ from the
// paper — the substrate is a Go simulator over synthetic datasets on this
// host, not 28 nm RTL plus a dual-EPYC testbed — but each experiment's
// *shape* (who wins, rough factors, trends) reproduces; EXPERIMENTS.md
// records paper-vs-measured values side by side.
package experiments

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"mint/internal/atomicio"
	"mint/internal/datasets"
	"mint/internal/faultinject"
	"mint/internal/mackey"
	"mint/internal/memlayout"
	hw "mint/internal/mint"
	"mint/internal/obs"
	"mint/internal/runctl"
	"mint/internal/temporal"
)

// Config controls experiment scope and output.
type Config struct {
	// Out receives the printed tables (default os.Stdout).
	Out io.Writer

	// OutDir, when non-empty, receives one CSV per experiment.
	OutDir string

	// MaxEdges caps each dataset's scaled edge count so cycle-level
	// simulation stays tractable on one host core.
	MaxEdges int

	// Delta is the motif time window (paper: 1 hour).
	Delta temporal.Timestamp

	// Quick shrinks every sweep for smoke tests.
	Quick bool

	// Obs, when non-nil, receives the counters of every miner and
	// simulator run the experiments launch; the driver snapshots it
	// around each experiment to print per-experiment summaries and write
	// per-experiment RunReport JSONs.
	Obs *obs.Registry

	// Fault, when non-nil, is a chaos plan attached to every miner run the
	// experiments launch (via each run's controller). Injected faults
	// truncate the affected run explicitly — used by the CI chaos job to
	// prove the sweep degrades loudly, never silently.
	Fault *faultinject.Plan

	// WorkBudget caps the software work (candidate examinations +
	// bookkeepings) of each simulated workload; datasets are re-scaled
	// down per (dataset, motif) pair until they fit, bounding cycle-level
	// simulation time. Dense motifs like M4 on wiki-talk would otherwise
	// produce tens of millions of simulation events.
	WorkBudget int64

	graphs    map[string]*temporal.Graph
	workloads map[string]*temporal.Graph
}

// Default returns the standard harness configuration.
func Default() Config {
	return Config{
		Out:      os.Stdout,
		OutDir:   "results",
		MaxEdges: 40_000,
		Delta:    temporal.DeltaHour,
		// Pre-created so the cache is shared across experiments even
		// though Config is passed by value.
		graphs:    map[string]*temporal.Graph{},
		workloads: map[string]*temporal.Graph{},
	}
}

func (c *Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

// scaleFor returns the generation scale that caps spec at MaxEdges.
func (c *Config) scaleFor(spec datasets.Spec) float64 {
	maxEdges := c.MaxEdges
	if maxEdges <= 0 {
		maxEdges = 40_000
	}
	if c.Quick {
		maxEdges = min(maxEdges, 3000)
	}
	s := float64(maxEdges) / float64(spec.TemporalEdges)
	if s > 1 {
		s = 1
	}
	return s
}

// dataset returns the (cached) scaled graph for a dataset.
func (c *Config) dataset(spec datasets.Spec) (*temporal.Graph, error) {
	if c.graphs == nil {
		c.graphs = map[string]*temporal.Graph{}
	}
	if g, ok := c.graphs[spec.Short]; ok {
		return g, nil
	}
	g, err := datasets.Generate(spec, c.scaleFor(spec))
	if err != nil {
		return nil, err
	}
	c.graphs[spec.Short] = g
	return g, nil
}

// workload returns a (cached) graph for one (dataset, motif) simulation
// row, re-scaled until its software mining work fits WorkBudget. All
// systems compared within a row run this same graph.
func (c *Config) workload(spec datasets.Spec, m *temporal.Motif) (*temporal.Graph, error) {
	budget := c.WorkBudget
	if budget <= 0 {
		budget = 800_000
	}
	return c.workloadScaled(spec, m, c.scaleFor(spec), budget, "")
}

// largeWorkload is workload at the memoization-study operating point
// (Fig 10): roughly 5× larger datasets, so hub neighborhoods are big
// enough — and the scaled cache pressured enough — for the §VI-A
// optimization to show its traffic effect, as it does on the paper's
// full-size wiki-talk and stackoverflow.
func (c *Config) largeWorkload(spec datasets.Spec, m *temporal.Motif) (*temporal.Graph, error) {
	maxEdges := 200_000
	budget := int64(4_000_000)
	if c.Quick {
		maxEdges = 3000
		budget = 50_000
	}
	scale := float64(maxEdges) / float64(spec.TemporalEdges)
	if scale > 1 {
		scale = 1
	}
	return c.workloadScaled(spec, m, scale, budget, "L")
}

func (c *Config) workloadScaled(spec datasets.Spec, m *temporal.Motif,
	scale float64, budget int64, keySuffix string) (*temporal.Graph, error) {
	if c.workloads == nil {
		c.workloads = map[string]*temporal.Graph{}
	}
	key := spec.Short + "/" + m.Name + keySuffix
	if g, ok := c.workloads[key]; ok {
		return g, nil
	}
	if c.Quick {
		budget = min(budget, 50_000)
	}
	var g *temporal.Graph
	for try := 0; try < 5; try++ {
		var err error
		g, err = datasets.Generate(spec, scale)
		if err != nil {
			return nil, err
		}
		res := mackey.Mine(g, m, c.minerOpts())
		work := res.Stats.CandidateEdges + res.Stats.BookkeepTasks
		if work <= budget {
			break
		}
		// Work grows superlinearly with scale; shrink conservatively.
		scale *= math.Sqrt(float64(budget)/float64(work)) * 0.9
	}
	c.workloads[key] = g
	return g, nil
}

// minerOpts returns the baseline miner options with the experiment
// registry attached (Probe stays per-call-site). Under a chaos plan every
// run gets its own controller carrying the plan, so injected faults
// truncate that run explicitly rather than poisoning the whole sweep.
func (c *Config) minerOpts() mackey.Options {
	opts := mackey.Options{Obs: c.Obs}
	if c.Fault != nil {
		ctl := runctl.New(nil, runctl.Budget{})
		ctl.SetFaultPlan(c.Fault)
		opts.Ctl = ctl
	}
	return opts
}

// motifs returns the evaluation motifs M1–M4 at the configured δ.
func (c *Config) motifs() []*temporal.Motif {
	d := c.Delta
	if d <= 0 {
		d = temporal.DeltaHour
	}
	ms := temporal.EvaluationMotifs(d)
	if c.Quick {
		return ms[:2]
	}
	return ms
}

// specs returns the evaluation datasets, smallest first.
func (c *Config) specs() []datasets.Spec {
	all := datasets.SortedBySize()
	if c.Quick {
		return all[:2]
	}
	return all
}

// CacheToWorkingSetRatio preserves the paper's cache-to-dataset
// proportion: the 4 MB on-chip cache versus datasets from ~200 MB
// (wiki-talk, 1:50) to ~1.5 GB (stackoverflow, 1:375). Experiments run on
// scaled-down datasets, so the modeled cache shrinks by the same
// proportion — otherwise every scaled dataset is cache-resident and the
// memory system the paper characterizes never engages. 100 is the
// geometric middle of the paper's range; at this point the simulator
// reproduces the paper's operating regime (cache hit rates in the 60–80%
// band and DRAM bandwidth utilization above 60%, §VI-B/Fig 13).
const CacheToWorkingSetRatio = 100

// simConfig returns the Table II machine, shrunk under Quick, with the
// experiment registry attached.
func (c *Config) simConfig() hw.Config {
	cfg := hw.DefaultConfig()
	if c.Quick {
		cfg.PEs = 16
		cfg.Cache.Banks = 8
	}
	cfg.Obs = c.Obs
	return cfg
}

// simConfigFor returns the Table II machine with the cache scaled to
// preserve the paper's cache:working-set proportion for graph g.
func (c *Config) simConfigFor(g *temporal.Graph) hw.Config {
	cfg := c.simConfig()
	minBytes := cfg.Cache.Banks * cfg.Cache.LineBytes * cfg.Cache.Ways
	cfg.Cache.BankBytes = scaledCacheBytes(g, 1.0, minBytes) / cfg.Cache.Banks
	return cfg
}

// scaledCacheBytes computes the scaled-equivalent cache capacity for g:
// fraction 1.0 corresponds to the Table II 4 MB cache, 0.5 to 2 MB, etc.
// minBytes keeps the geometry valid (at least one set per bank) for tiny
// test graphs; pass banks × line × ways.
func scaledCacheBytes(g *temporal.Graph, fraction float64, minBytes int) int {
	ws := int(memlayout.New(g).TotalBytes)
	bytes := int(float64(ws) / CacheToWorkingSetRatio * fraction)
	if bytes < minBytes {
		bytes = minBytes
	}
	if bytes > 4<<20 {
		bytes = 4 << 20
	}
	return bytes
}

// writeCSV emits rows (first row = header) to OutDir/name.csv,
// atomically: the CSV is rendered in memory and lands via temp-file +
// fsync + rename, so a sweep killed mid-experiment never leaves a torn
// half-table for plotting scripts to misread.
func (c *Config) writeCSV(name string, rows [][]string) error {
	if c.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.OutDir, 0o755); err != nil {
		return err
	}
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return atomicio.WriteFile(filepath.Join(c.OutDir, name+".csv"), buf.Bytes(), 0o644)
}

// timeIt measures wall time of f.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// geomean computes the geometric mean of positive values; zero on empty.
func geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	logSum := 0.0
	n := 0
	for _, v := range vals {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n===== %s =====\n", title)
}

// All runs every experiment in paper order.
func All(cfg Config) error {
	steps := []struct {
		name string
		run  func(Config) error
	}{
		{"Table I", Table1},
		{"Table II", Table2},
		{"Fig 2", Fig2},
		{"Fig 7", Fig7},
		{"Fig 10", Fig10},
		{"Fig 11", Fig11},
		{"Fig 12", Fig12},
		{"Fig 13", Fig13},
		{"Fig 14", Fig14},
		{"DeltaSweep", DeltaSweep},
	}
	for _, s := range steps {
		if err := s.run(cfg); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}
