package experiments

import (
	"fmt"
	"sort"

	"mint/internal/datasets"
	"mint/internal/mackey"
	"mint/internal/temporal"
)

// utilizationProbe samples, for a chosen set of nodes, the neighborhood
// utilization of every phase-1 access: the fraction of the node's index
// list at or beyond the >eG filter point. Samples are bucketed by
// algorithm progress (root eG / |E|), the x-axis of Fig 7.
type utilizationProbe struct {
	watch    map[int32]int // node -> series index
	buckets  int
	numEdges int
	sum      [][]float64
	cnt      [][]int64
}

func newUtilizationProbe(nodes []temporal.NodeID, buckets, numEdges int) *utilizationProbe {
	p := &utilizationProbe{
		watch:    make(map[int32]int, len(nodes)),
		buckets:  buckets,
		numEdges: numEdges,
		sum:      make([][]float64, len(nodes)),
		cnt:      make([][]int64, len(nodes)),
	}
	for i, n := range nodes {
		p.watch[int32(n)] = i
		p.sum[i] = make([]float64, buckets)
		p.cnt[i] = make([]int64, buckets)
	}
	return p
}

func (p *utilizationProbe) NeighborhoodAccess(node int32, out bool, listLen, filterPos int, rootEG int32) {
	si, ok := p.watch[node]
	if !ok || listLen == 0 {
		return
	}
	b := int(int64(rootEG) * int64(p.buckets) / int64(p.numEdges))
	if b >= p.buckets {
		b = p.buckets - 1
	}
	p.sum[si][b] += float64(listLen-filterPos) / float64(listLen)
	p.cnt[si][b]++
}

func (p *utilizationProbe) Match([]int32) {}

// series returns the bucketed mean utilization for one watched node
// (NaN-free: empty buckets repeat the previous value).
func (p *utilizationProbe) series(i int) []float64 {
	out := make([]float64, p.buckets)
	last := 1.0
	for b := 0; b < p.buckets; b++ {
		if p.cnt[i][b] > 0 {
			last = p.sum[i][b] / float64(p.cnt[i][b])
		}
		out[b] = last
	}
	return out
}

// Fig7 reproduces the neighborhood-utilization decay: for M1 on wiki-talk
// and stackoverflow, the two highest-degree nodes are sampled and their
// phase-1 utilization is tracked across algorithm progress. The paper's
// observation — utilization falls toward zero as mining progresses, which
// motivates search index memoization (§VI-A) — must reproduce as a
// decreasing trend.
func Fig7(cfg Config) error {
	w := cfg.out()
	header(w, "Fig 7: neighborhood utilization vs algorithm progress (M1)")
	const buckets = 10
	m1 := cfg.motifs()[0]

	names := []string{"wt", "so"}
	if cfg.Quick {
		names = []string{"em"}
	}
	rows := [][]string{{"series", "bucket", "utilization"}}
	for _, name := range names {
		spec, err := datasets.ByName(name)
		if err != nil {
			return err
		}
		g, err := cfg.dataset(spec)
		if err != nil {
			return err
		}
		nodes := topOutDegreeNodes(g, 2)
		probe := newUtilizationProbe(nodes, buckets, g.NumEdges())
		opts := cfg.minerOpts()
		opts.Probe = mackey.MultiProbe(probe, mackey.RegistryProbe(cfg.Obs))
		mackey.Mine(g, m1, opts)
		for i, node := range nodes {
			series := probe.series(i)
			label := fmt.Sprintf("m1_%s_node%d", name, i+1)
			fmt.Fprintf(w, "%-16s (graph node %6d):", label, node)
			for b, v := range series {
				fmt.Fprintf(w, " %5.2f", v)
				rows = append(rows, []string{label, fmt.Sprint(b), fmt.Sprintf("%.4f", v)})
			}
			fmt.Fprintln(w)
			if series[0] < series[buckets-1] {
				fmt.Fprintf(w, "  WARNING: utilization did not decay for %s\n", label)
			}
		}
	}
	return cfg.writeCSV("fig7", rows)
}

// topOutDegreeNodes returns the n nodes with the largest out-lists.
func topOutDegreeNodes(g *temporal.Graph, n int) []temporal.NodeID {
	type nd struct {
		node temporal.NodeID
		deg  int
	}
	all := make([]nd, 0, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		all = append(all, nd{temporal.NodeID(u), len(g.OutEdges(temporal.NodeID(u)))})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].deg > all[j].deg })
	if n > len(all) {
		n = len(all)
	}
	out := make([]temporal.NodeID, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].node
	}
	return out
}
