package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mint/internal/obs"
)

// Summary condenses one experiment's registry delta — everything the
// miners and the simulator counted while that experiment ran — into the
// headline numbers a human scans between tables: total matches found,
// software expansions, simulated cycles, wall time, and whether any run
// inside the experiment was truncated by a budget.
type Summary struct {
	Name       string
	Wall       time.Duration
	Matches    int64
	Expansions int64
	SimCycles  int64
	Truncated  bool
}

// Summarize builds the Summary for one experiment from the snapshot
// delta taken around it (reg.Snapshot().Delta(prev)).
func Summarize(name string, delta obs.Snapshot, wall time.Duration) Summary {
	return Summary{
		Name: name,
		Wall: wall,
		Matches: delta.Counter("mackey.matches") +
			delta.Counter("task.matches") +
			delta.Counter("sim.matches"),
		Expansions: delta.Counter("mackey.nodes_expanded"),
		SimCycles:  delta.Counter("sim.cycles"),
		Truncated: delta.Counter("mackey.truncated_runs")+
			delta.Counter("task.truncated_runs")+
			delta.Counter("sim.truncated_runs") > 0,
	}
}

// Line renders the one-line per-experiment summary printed after each
// experiment completes.
func (s Summary) Line() string {
	trunc := ""
	if s.Truncated {
		trunc = " truncated=yes"
	}
	return fmt.Sprintf("[obs] %-10s matches=%d expansions=%d sim_cycles=%d wall=%.2fs%s",
		s.Name, s.Matches, s.Expansions, s.SimCycles, s.Wall.Seconds(), trunc)
}

// Report expands a Summary and its delta snapshot into a full RunReport
// (schema mint.run_report/v1) carrying every counter, gauge, and
// histogram the experiment produced. startUnixNano and cpuSeconds come
// from the caller so the report covers exactly the experiment's span.
func Report(s Summary, delta obs.Snapshot, startUnixNano int64, cpuSeconds float64) *obs.RunReport {
	rep := obs.NewRunReport("experiments", s.Name)
	rep.StartUnixNano = startUnixNano
	rep.WallSeconds = s.Wall.Seconds()
	rep.CPUSeconds = cpuSeconds
	rep.Matches = s.Matches
	rep.Truncated = s.Truncated
	rep.AttachSnapshot(delta)
	return rep
}

// WriteReport writes a per-experiment RunReport to
// OutDir/report_<algo>.json; no-op when OutDir is empty.
func (c *Config) WriteReport(rep *obs.RunReport) error {
	if c.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(c.OutDir, 0o755); err != nil {
		return err
	}
	return rep.WriteFile(filepath.Join(c.OutDir, "report_"+rep.Algo+".json"))
}
