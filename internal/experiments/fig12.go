package experiments

import (
	"fmt"
	"math"

	"mint/internal/datasets"
	"mint/internal/mackey"
	hw "mint/internal/mint"
	"mint/internal/staticmine"
	"mint/internal/temporal"
)

// Fig12 reproduces the static-mining-accelerator comparison: per motif
// (averaged over datasets), the speedup over the Mackey CPU baseline of
// (a) a modeled FlexMiner — measured static pattern mining time divided by
// FlexMiner's best reported 40× speedup, with temporal resolution (phase
// 2) generously ignored — and (b) Mint; plus the static-to-temporal match
// count ratio that explains the gap. The paper's conclusion: Mint is an
// order of magnitude faster despite FlexMiner's free pass on phase 2,
// because static instances outnumber temporal motifs by large factors.
//
// Static enumeration is capped per workload (the ratio can be astronomical
// on M3/M4); when the cap trips, the count and the FlexMiner time are
// extrapolated from the measured rate and marked in the output.
func Fig12(cfg Config) error {
	w := cfg.out()
	header(w, "Fig 12: static mining accelerator (modeled FlexMiner) vs Mint")

	// A statically sparser variant of each dataset: nodes scale less than
	// edges, restoring realistic static edge density (DESIGN.md §6). The
	// temporal work budget applies here too so the Mint simulation of each
	// row stays bounded.
	budget := cfg.WorkBudget
	if budget <= 0 {
		budget = 800_000
	}
	if cfg.Quick {
		budget = 50_000
	}
	staticGraph := func(spec datasets.Spec, m *temporal.Motif) (*temporal.Graph, error) {
		scale := cfg.scaleFor(spec)
		var g *temporal.Graph
		for try := 0; try < 5; try++ {
			var err error
			g, err = datasets.GenerateWithNodeScale(spec, scale, math.Pow(scale, 0.75))
			if err != nil {
				return nil, err
			}
			res := mackey.Mine(g, m, cfg.minerOpts())
			work := res.Stats.CandidateEdges + res.Stats.BookkeepTasks
			if work <= budget {
				break
			}
			scale *= math.Sqrt(float64(budget)/float64(work)) * 0.9
		}
		return g, nil
	}

	staticCap := int64(2_000_000)
	if cfg.Quick {
		staticCap = 50_000
	}
	specs := cfg.specs()
	if !cfg.Quick {
		specs = specs[:4] // em..su: static enumeration on wt/so is unbounded even capped
	}

	fmt.Fprintf(w, "%-4s %16s %16s %14s %14s %12s\n",
		"m", "flexminer (x)", "mint (x)", "static cnt", "temporal cnt", "ratio")
	rows := [][]string{{"motif", "flexminer_speedup", "mint_speedup", "static", "temporal", "ratio", "capped"}}
	for _, m := range cfg.motifs() {
		var flexSp, mintSp, ratios []float64
		var staticTotal, temporalTotal float64
		capped := false
		for _, spec := range specs {
			g, err := staticGraph(spec, m)
			if err != nil {
				return err
			}
			var cpu mackey.Result
			cpuSec := timeIt(func() { cpu = mackey.MineParallel(g, m, cfg.minerOpts()) })

			sg := staticmine.Build(g)
			pattern := staticmine.FromMotif(m)
			var staticCount int64
			staticSec := timeIt(func() {
				staticmine.Enumerate(sg, pattern, func([]temporal.NodeID) bool {
					staticCount++
					return staticCount < staticCap
				})
			})
			if staticCount >= staticCap {
				capped = true
			}
			flexSec := staticSec / staticmine.FlexMinerSpeedup

			mintRes, err := hw.Simulate(g, m, cfg.simConfigFor(g))
			if err != nil {
				return err
			}
			flexSp = append(flexSp, cpuSec/flexSec)
			mintSp = append(mintSp, cpuSec/mintRes.Seconds)
			staticTotal += float64(staticCount)
			temporalTotal += float64(cpu.Matches)
			if cpu.Matches > 0 {
				ratios = append(ratios, float64(staticCount)/float64(cpu.Matches))
			}
		}
		ratio := geomean(ratios)
		ratioCell := fmt.Sprintf("%11.1fx", ratio)
		if temporalTotal == 0 && staticTotal > 0 {
			ratioCell = fmt.Sprintf("%12s", "inf") // static instances, zero temporal motifs
		}
		mark := ""
		if capped {
			mark = "≥"
		}
		fmt.Fprintf(w, "%-4s %15.1fx %15.1fx %s%13.0f %14.0f %s\n",
			m.Name, geomean(flexSp), geomean(mintSp), mark, staticTotal, temporalTotal, ratioCell)
		rows = append(rows, []string{m.Name,
			fmt.Sprintf("%.2f", geomean(flexSp)), fmt.Sprintf("%.2f", geomean(mintSp)),
			fmt.Sprintf("%.0f", staticTotal), fmt.Sprintf("%.0f", temporalTotal),
			fmt.Sprintf("%.2f", ratio), fmt.Sprint(capped)})
	}
	fmt.Fprintln(w, "(paper: Mint ~an order of magnitude above FlexMiner; static/temporal ratios 10^3–10^8)")
	return cfg.writeCSV("fig12", rows)
}
