package experiments

import (
	"fmt"
	"runtime"

	"mint/internal/cpumodel"
	"mint/internal/datasets"
)

// Fig2 reproduces the workload characterization: the thread-scaling curves
// of M1 mining on every dataset (left panel — a real measurement of the
// parallel Go miner on this host) and the CPI-stack stall distribution of
// M1 on wiki-talk (right panel — the modeled stack; paper values: 72.5%
// dram-stall, 22.7% branch-stall, 2.6% other, 2.2% no-stall).
func Fig2(cfg Config) error {
	w := cfg.out()
	m1 := cfg.motifs()[0]

	header(w, "Fig 2 (left): normalized runtime of M1 mining vs thread count")
	fmt.Fprintf(w, "(host has %d CPU core(s); the paper's 128-core EPYC saturates at 8-32 threads)\n",
		runtime.NumCPU())
	threads := []int{1, 2, 4, 8, 16, 32, 64}
	if cfg.Quick {
		threads = []int{1, 2, 4}
	}
	fmt.Fprintf(w, "%-14s", "dataset")
	for _, th := range threads {
		fmt.Fprintf(w, " %8d", th)
	}
	fmt.Fprintln(w)
	rows := [][]string{{"dataset"}}
	for _, th := range threads {
		rows[0] = append(rows[0], fmt.Sprintf("t%d", th))
	}
	for _, spec := range cfg.specs() {
		g, err := cfg.dataset(spec)
		if err != nil {
			return err
		}
		pts := cpumodel.ThreadScaling(g, m1, threads)
		fmt.Fprintf(w, "%-14s", spec.Short)
		row := []string{spec.Short}
		for _, p := range pts {
			fmt.Fprintf(w, " %8.3f", p.Normalized)
			row = append(row, fmt.Sprintf("%.4f", p.Normalized))
		}
		fmt.Fprintln(w)
		rows = append(rows, row)
	}
	if err := cfg.writeCSV("fig2_scaling", rows); err != nil {
		return err
	}

	header(w, "Fig 2 (right): CPI-stack stall distribution, M1 on wiki-talk")
	wt, err := datasets.ByName("wt")
	if err != nil {
		return err
	}
	g, err := cfg.dataset(wt)
	if err != nil {
		return err
	}
	mcfg := cpumodel.DefaultModelConfig()
	// Scale the modeled LLC slice with the scaled working set, as the
	// simulated machines do. The CPU's slice is proportionally larger than
	// the accelerator's cache (the paper's EPYC has 2 MB LLC per core
	// against the shared dataset), and its deep speculation exposes more
	// branch cost per miss than the accelerator's in-order engines.
	mcfg.LLCBytes = scaledCacheBytes(g, 1.0, 16<<10) * 3
	mcfg.MispredictRate = 0.30
	mcfg.MispredictPenalty = 20
	st, err := cpumodel.Characterize(g, m1, mcfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %9s %9s\n", "component", "modeled", "paper")
	fmt.Fprintf(w, "%-14s %8.1f%% %8.1f%%\n", "dram-stall", st.DRAMStall*100, 72.5)
	fmt.Fprintf(w, "%-14s %8.1f%% %8.1f%%\n", "branch-stall", st.BranchStall*100, 22.7)
	fmt.Fprintf(w, "%-14s %8.1f%% %8.1f%%\n", "other-stalls", st.OtherStalls*100, 2.6)
	fmt.Fprintf(w, "%-14s %8.1f%% %8.1f%%\n", "no-stall", st.NoStall*100, 2.2)
	return cfg.writeCSV("fig2_cpistack", [][]string{
		{"component", "modeled", "paper"},
		{"dram-stall", fmt.Sprintf("%.3f", st.DRAMStall), "0.725"},
		{"branch-stall", fmt.Sprintf("%.3f", st.BranchStall), "0.227"},
		{"other-stalls", fmt.Sprintf("%.3f", st.OtherStalls), "0.026"},
		{"no-stall", fmt.Sprintf("%.3f", st.NoStall), "0.022"},
	})
}
