package experiments

import (
	"fmt"

	"mint/internal/power"
)

// Fig14 reproduces the area/power breakdown of the full Mint design on the
// 28 nm node. Paper totals: 28.3 mm², 5.1 W, with the SRAM cache the
// dominant consumer of both.
func Fig14(cfg Config) error {
	w := cfg.out()
	header(w, "Fig 14: area and power of the Mint design (28 nm, 1.6 GHz)")
	b := power.ReferenceModel()
	fmt.Fprintf(w, "%-18s %10s %12s %12s\n", "Component", "Instances", "Area (mm2)", "Power (mW)")
	rows := [][]string{{"component", "instances", "area_mm2", "power_mw"}}
	for _, c := range b.Components {
		fmt.Fprintf(w, "%-18s %10d %12.3f %12.1f\n", c.Name, c.Instances, c.AreaMM2, c.PowerMW)
		rows = append(rows, []string{c.Name, fmt.Sprint(c.Instances),
			fmt.Sprintf("%.3f", c.AreaMM2), fmt.Sprintf("%.1f", c.PowerMW)})
	}
	fmt.Fprintf(w, "%-18s %10s %12.1f %12.1f\n", "Total", "", b.AreaMM2, b.PowerW*1000)
	fmt.Fprintf(w, "(paper: 28.3 mm2, 5.1 W; vs GPU %.0f W: %.0fx lower power)\n",
		power.GPUPowerW, power.GPUPowerW/b.PowerW)
	rows = append(rows, []string{"total", "", fmt.Sprintf("%.1f", b.AreaMM2),
		fmt.Sprintf("%.1f", b.PowerW*1000)})
	return cfg.writeCSV("fig14", rows)
}
