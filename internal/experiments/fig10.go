package experiments

import (
	"fmt"

	"mint/internal/mackey"
	hw "mint/internal/mint"
)

// Fig10 reproduces the search index memoization study: Mint's speedup over
// the Mackey et al. CPU baseline with and without the §VI-A optimization,
// plus the memory-traffic reduction the optimization delivers. Paper
// headline: 91.6× → 363.1× average speedup (4.0× from memoization) and
// 2.8× average traffic reduction, strongest on wiki-talk/stackoverflow.
func Fig10(cfg Config) error {
	w := cfg.out()
	header(w, "Fig 10: Mint speedup vs Mackey et al. CPU, without/with search index memoization")
	fmt.Fprintf(w, "%-14s %-4s %12s %12s %12s %12s %10s %10s\n",
		"dataset", "m", "cpu(s)", "mint(s)", "mint+memo(s)", "memo gain",
		"traffic red", "matches")
	rows := [][]string{{"dataset", "motif", "cpu_s", "mint_s", "mint_memo_s",
		"speedup_nomemo", "speedup_memo", "memo_gain", "traffic_reduction", "matches"}}

	var spNo, spMemo, gains, reds []float64
	for _, spec := range cfg.specs() {
		for _, m := range cfg.motifs() {
			g, err := cfg.largeWorkload(spec, m)
			if err != nil {
				return err
			}
			var cpu mackey.Result
			cpuSec := timeIt(func() { cpu = mackey.MineParallel(g, m, cfg.minerOpts()) })

			base := cfg.simConfigFor(g)
			base.Memoize = false
			plain, err := hw.Simulate(g, m, base)
			if err != nil {
				return err
			}
			memoCfg := cfg.simConfigFor(g)
			memoCfg.Memoize = true
			memo, err := hw.Simulate(g, m, memoCfg)
			if err != nil {
				return err
			}
			if plain.Matches != cpu.Matches || memo.Matches != cpu.Matches {
				return fmt.Errorf("fig10: count mismatch on %s/%s: cpu=%d plain=%d memo=%d",
					spec.Short, m.Name, cpu.Matches, plain.Matches, memo.Matches)
			}
			sNo := cpuSec / plain.Seconds
			sMemo := cpuSec / memo.Seconds
			gain := plain.Seconds / memo.Seconds
			red := float64(plain.MemTrafficBytes) / float64(max64(memo.MemTrafficBytes, 1))
			spNo = append(spNo, sNo)
			spMemo = append(spMemo, sMemo)
			gains = append(gains, gain)
			reds = append(reds, red)
			fmt.Fprintf(w, "%-14s %-4s %12.4f %12.6f %12.6f %11.2fx %9.2fx %10d\n",
				spec.Short, m.Name, cpuSec, plain.Seconds, memo.Seconds, gain, red, cpu.Matches)
			rows = append(rows, []string{spec.Short, m.Name,
				fmt.Sprintf("%.6f", cpuSec), fmt.Sprintf("%.6f", plain.Seconds),
				fmt.Sprintf("%.6f", memo.Seconds), fmt.Sprintf("%.2f", sNo),
				fmt.Sprintf("%.2f", sMemo), fmt.Sprintf("%.3f", gain),
				fmt.Sprintf("%.3f", red), fmt.Sprint(cpu.Matches)})
		}
	}
	fmt.Fprintf(w, "geomean speedup w/o memo: %.1fx   (paper: 91.6x)\n", geomean(spNo))
	fmt.Fprintf(w, "geomean speedup w/  memo: %.1fx   (paper: 363.1x)\n", geomean(spMemo))
	fmt.Fprintf(w, "geomean memoization gain: %.2fx   (paper: 4.0x)\n", geomean(gains))
	fmt.Fprintf(w, "geomean traffic reduction: %.2fx  (paper: 2.8x)\n", geomean(reds))
	return cfg.writeCSV("fig10", rows)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
