package dram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestControllerInvariantsProperty drives random request streams and
// checks the channel model's invariants:
//
//   - completion times are strictly increasing per channel (service is
//     serialized) and never precede now + service + base latency;
//   - byte accounting equals accepted requests × line size;
//   - utilization never exceeds 1 over the busy horizon.
func TestControllerInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.QueueDepth = 8
		c, err := NewController(cfg)
		if err != nil {
			return false
		}
		service := int64(float64(cfg.LineBytes) / cfg.BytesPerCyclePerChannel)
		lastDone := make([]int64, cfg.Channels)
		accepted := int64(0)
		now := int64(0)
		maxDone := int64(0)
		for i := 0; i < 400; i++ {
			if rng.Intn(2) == 0 {
				now += int64(rng.Intn(20))
			}
			line := uint64(rng.Intn(256))
			done, ok := c.Request(line, now, rng.Intn(5) == 0)
			if !ok {
				continue
			}
			accepted++
			ch := int(line % uint64(cfg.Channels))
			if done <= lastDone[ch] {
				t.Logf("channel %d: completion %d not after previous %d", ch, done, lastDone[ch])
				return false
			}
			if done < now+service+cfg.BaseLatency {
				t.Logf("completion %d earlier than physically possible %d", done, now+service+cfg.BaseLatency)
				return false
			}
			lastDone[ch] = done
			if done > maxDone {
				maxDone = done
			}
		}
		s := c.Stats()
		if s.TotalBytes() != accepted*int64(cfg.LineBytes) {
			return false
		}
		return maxDone == 0 || c.Utilization(maxDone) <= 1.0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
