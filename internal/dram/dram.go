// Package dram models the accelerator's main memory: an 8-channel
// DDR4-3200 system with 204.8 GB/s aggregate peak bandwidth (paper
// Table II). The model is a per-channel bandwidth/latency queue — the
// substitution for Ramulator documented in DESIGN.md §6: temporal motif
// mining is bandwidth-bound (the paper measures >60% peak bandwidth
// utilization and >98% of search-engine time waiting on DRAM, §VI-B), so a
// bandwidth-faithful channel model preserves the bottleneck that shapes
// the results.
package dram

import "fmt"

// Config describes the DRAM system. All latencies are in accelerator
// clock cycles.
type Config struct {
	// Channels is the number of independent channels (Table II: 8).
	Channels int
	// LineBytes is the transfer granule (one cache line).
	LineBytes int
	// BytesPerCyclePerChannel is the per-channel service bandwidth in
	// bytes per accelerator cycle. DDR4-3200 × 8 channels = 204.8 GB/s;
	// at 1.6 GHz that is 128 B/cycle total, 16 B/cycle per channel.
	BytesPerCyclePerChannel float64
	// BaseLatency is the unloaded access latency in cycles (row activate +
	// CAS + transfer head; ~40 ns ≈ 64 cycles at 1.6 GHz).
	BaseLatency int64
	// QueueDepth bounds outstanding requests per channel; a full queue
	// back-pressures the requester (the cache's MSHRs).
	QueueDepth int
}

// DefaultConfig returns the Table II DRAM system as seen by a 1.6 GHz
// accelerator clock.
func DefaultConfig() Config {
	return Config{
		Channels:                8,
		LineBytes:               64,
		BytesPerCyclePerChannel: 16,
		BaseLatency:             64,
		QueueDepth:              64,
	}
}

// Stats aggregates DRAM activity.
type Stats struct {
	Reads      int64
	Writes     int64
	BytesRead  int64
	BytesWrite int64
	// BusyCycles accumulates per-channel service occupancy; divide by
	// (channels × elapsed cycles) for utilization.
	BusyCycles int64
}

// TotalBytes is all data moved.
func (s Stats) TotalBytes() int64 { return s.BytesRead + s.BytesWrite }

// Controller is the cycle-level DRAM model. It is not safe for concurrent
// use; the simulator drives it from a single goroutine.
type Controller struct {
	cfg          Config
	serviceCycle int64 // cycles to move one line on one channel
	nextFree     []int64
	inflight     []int
	stats        Stats
}

// NewController validates cfg and builds a controller.
func NewController(cfg Config) (*Controller, error) {
	if cfg.Channels <= 0 || cfg.LineBytes <= 0 || cfg.BytesPerCyclePerChannel <= 0 {
		return nil, fmt.Errorf("dram: invalid config %+v", cfg)
	}
	service := int64(float64(cfg.LineBytes)/cfg.BytesPerCyclePerChannel + 0.5)
	if service < 1 {
		service = 1
	}
	return &Controller{
		cfg:          cfg,
		serviceCycle: service,
		nextFree:     make([]int64, cfg.Channels),
		inflight:     make([]int, cfg.Channels),
	}, nil
}

// channel maps a line address to its channel (line interleaving).
func (c *Controller) channel(lineAddr uint64) int {
	return int(lineAddr % uint64(c.cfg.Channels))
}

// Request enqueues a line read (or write when write=true) beginning at
// cycle now. It returns the completion cycle and true, or false when the
// channel queue is full and the requester must retry later.
func (c *Controller) Request(lineAddr uint64, now int64, write bool) (done int64, ok bool) {
	ch := c.channel(lineAddr)
	// Drain bookkeeping: requests finished by now free queue slots.
	if c.nextFree[ch] <= now {
		c.inflight[ch] = 0
	}
	if c.inflight[ch] >= c.cfg.QueueDepth {
		return 0, false
	}
	start := c.nextFree[ch]
	if start < now {
		start = now
	}
	finish := start + c.serviceCycle
	c.nextFree[ch] = finish
	c.inflight[ch]++
	c.stats.BusyCycles += c.serviceCycle
	if write {
		c.stats.Writes++
		c.stats.BytesWrite += int64(c.cfg.LineBytes)
	} else {
		c.stats.Reads++
		c.stats.BytesRead += int64(c.cfg.LineBytes)
	}
	return finish + c.cfg.BaseLatency, true
}

// Stats returns a copy of the accumulated counters.
func (c *Controller) Stats() Stats { return c.stats }

// PeakBytesPerCycle is the aggregate peak bandwidth in bytes per cycle.
func (c *Controller) PeakBytesPerCycle() float64 {
	return c.cfg.BytesPerCyclePerChannel * float64(c.cfg.Channels)
}

// Utilization reports achieved bandwidth as a fraction of peak over an
// elapsed cycle count.
func (c *Controller) Utilization(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(c.stats.TotalBytes()) / (c.PeakBytesPerCycle() * float64(cycles))
}
