package dram

import "testing"

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Channels != 8 {
		t.Errorf("channels = %d, want 8", cfg.Channels)
	}
	// 204.8 GB/s at 1.6 GHz = 128 B/cycle aggregate.
	if got := cfg.BytesPerCyclePerChannel * float64(cfg.Channels); got != 128 {
		t.Errorf("aggregate = %v B/cycle, want 128", got)
	}
}

func TestNewControllerRejectsBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Channels: 0, LineBytes: 64, BytesPerCyclePerChannel: 16},
		{Channels: 8, LineBytes: 0, BytesPerCyclePerChannel: 16},
		{Channels: 8, LineBytes: 64, BytesPerCyclePerChannel: 0},
	} {
		if _, err := NewController(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestUnloadedLatency(t *testing.T) {
	c, err := NewController(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	done, ok := c.Request(0, 100, false)
	if !ok {
		t.Fatal("unloaded request rejected")
	}
	// service (64/16 = 4 cycles) + base latency 64.
	if done != 100+4+64 {
		t.Errorf("done = %d, want 168", done)
	}
}

func TestChannelSerialization(t *testing.T) {
	c, _ := NewController(DefaultConfig())
	// Same channel (same line addr modulo channels): requests serialize.
	d1, _ := c.Request(0, 0, false)
	d2, _ := c.Request(8, 0, false) // 8 % 8 == 0 → same channel
	if d2 != d1+4 {
		t.Errorf("second same-channel request done = %d, want %d", d2, d1+4)
	}
	// Different channel: no serialization.
	d3, _ := c.Request(1, 0, false)
	if d3 != d1 {
		t.Errorf("different-channel request done = %d, want %d", d3, d1)
	}
}

func TestQueueBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 2
	c, _ := NewController(cfg)
	if _, ok := c.Request(0, 0, false); !ok {
		t.Fatal("first rejected")
	}
	if _, ok := c.Request(0, 0, false); !ok {
		t.Fatal("second rejected")
	}
	if _, ok := c.Request(0, 0, false); ok {
		t.Fatal("third should back-pressure")
	}
	// After the queue drains, requests flow again.
	if _, ok := c.Request(0, 1000, false); !ok {
		t.Fatal("post-drain request rejected")
	}
}

func TestStatsAndUtilization(t *testing.T) {
	c, _ := NewController(DefaultConfig())
	c.Request(0, 0, false)
	c.Request(1, 0, true)
	s := c.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TotalBytes() != 128 {
		t.Fatalf("total bytes = %d", s.TotalBytes())
	}
	// 128 bytes over 10 cycles at 128 B/cycle peak = 10%.
	if got := c.Utilization(10); got < 0.099 || got > 0.101 {
		t.Fatalf("utilization = %v", got)
	}
	if c.Utilization(0) != 0 {
		t.Fatal("zero-cycle utilization must be 0")
	}
}
