// Information-flow analysis on social/communication networks.
//
// Kovanen et al. (paper §II-B) showed that temporal motif counts expose
// how information actually propagates over a network — structure a static
// view cannot see, because a static graph renders two users "connected"
// whether they exchanged one message or a burst of two hundred. This
// example builds two synthetic networks with *identical static structure*
// but different temporal behavior — one bursty and conversational, one
// with the same edges scattered uniformly in time — and compares their
// M1–M4 temporal motif profiles, their static pattern counts, and the
// modeled Mint accelerator runtime for profiling them.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"mint"
)

const (
	users      = 120
	contacts   = 900 // static edges
	msgPerEdge = 8   // temporal edges per static edge
	spanSecs   = 7 * 86_400
)

// buildStatic draws a fixed random static contact graph.
func buildStatic(rng *rand.Rand) [][2]mint.NodeID {
	seen := map[[2]mint.NodeID]bool{}
	var pairs [][2]mint.NodeID
	for len(pairs) < contacts {
		a := mint.NodeID(rng.Intn(users))
		b := mint.NodeID(rng.Intn(users))
		if a == b {
			continue
		}
		p := [2]mint.NodeID{a, b}
		if seen[p] {
			continue
		}
		seen[p] = true
		pairs = append(pairs, p)
	}
	return pairs
}

// temporalize assigns timestamps to the static edges. In the bursty
// network, activity arrives in shared cascade windows — the community
// lights up together for an hour (breaking news, an incident channel), so
// messages on *different* contacts coincide and information can actually
// flow across multi-edge paths. In the uniform network the same messages
// are scattered independently over the whole week.
func temporalize(rng *rand.Rand, pairs [][2]mint.NodeID, bursty bool) *mint.Graph {
	const windows = 24 // cascade windows across the week
	var edges []mint.Edge
	for _, p := range pairs {
		for k := 0; k < msgPerEdge; k++ {
			var t mint.Timestamp
			if bursty {
				w := rng.Intn(windows)
				t = mint.Timestamp(w)*(spanSecs/windows) + mint.Timestamp(rng.Int63n(3600))
			} else {
				t = mint.Timestamp(rng.Int63n(spanSecs))
			}
			edges = append(edges, mint.Edge{Src: p[0], Dst: p[1], Time: t})
		}
	}
	g, err := mint.NewGraph(edges)
	if err != nil {
		log.Fatal(err)
	}
	return g
}

func main() {
	rng := rand.New(rand.NewSource(4))
	pairs := buildStatic(rng)
	bursty := temporalize(rand.New(rand.NewSource(5)), pairs, true)
	uniform := temporalize(rand.New(rand.NewSource(5)), pairs, false)

	fmt.Printf("two networks, identical static structure: %d users, %d contacts, %d messages each\n\n",
		users, contacts, bursty.NumEdges())

	motifs := []*mint.Motif{
		mint.M1(mint.DeltaHour), mint.M2(mint.DeltaHour),
		mint.M3(mint.DeltaHour), mint.M4(mint.DeltaHour),
	}
	fmt.Printf("%-6s %14s %14s %10s\n", "motif", "bursty", "uniform", "ratio")
	for _, m := range motifs {
		cb := mint.Count(bursty, m)
		cu := mint.Count(uniform, m)
		ratio := "∞"
		if cu > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(cb)/float64(cu))
		}
		fmt.Printf("%-6s %14d %14d %10s\n", m.Name, cb, cu, ratio)
	}
	fmt.Println("\nidentical static graphs, radically different temporal motif profiles —")
	fmt.Println("the information loss the paper's §I email example describes.")

	// Profile the heavier network on the modeled accelerator.
	m1 := motifs[0]
	res, err := mint.Simulate(bursty, m1, mint.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMint accelerator, M1 on the bursty network: %d matches, %.3f µs modeled,\n",
		res.Matches, res.Seconds*1e6)
	fmt.Printf("%.1f%% peak DRAM bandwidth, %.1f%% cache hit rate\n",
		res.BandwidthUtil*100, res.CacheHitRate*100)

	// And the approximate estimate for a quick triage pass.
	cfg := mint.DefaultApproxConfig()
	cfg.Windows = 200
	est, err := mint.EstimateApprox(bursty, m1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	exact := mint.Count(bursty, m1)
	fmt.Printf("\nPRESTO-style estimate of M1: %.0f (exact %d, %.1f%% error)\n",
		est, exact, 100*abs(est-float64(exact))/float64(exact))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
