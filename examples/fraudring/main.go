// Fraud-ring detection on a financial transaction network.
//
// Temporal cycles are a known signature of artificial transaction volume
// and money-cycling fraud (the paper's §II-B, citing Hajdu & Krész): money
// that flows A→B→C→A within a short window returns to its origin, which
// legitimate commerce rarely does. This example builds a synthetic
// transaction network with a heavy tail of normal payments, injects three
// fraud rings that cycle funds within minutes, and uses exact temporal
// motif mining to recover them — exactly the scenario where approximate
// counting is not enough (§II-C: every instance must be enumerated).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"mint"
)

const (
	accounts   = 400
	payments   = 12_000
	daySeconds = 86_400
)

func main() {
	rng := rand.New(rand.NewSource(7))
	var edges []mint.Edge

	// Background traffic: random payments spread over 30 days.
	for i := 0; i < payments; i++ {
		src := mint.NodeID(rng.Intn(accounts))
		dst := mint.NodeID(rng.Intn(accounts))
		if src == dst {
			dst = (dst + 1) % accounts
		}
		edges = append(edges, mint.Edge{
			Src: src, Dst: dst,
			Time: mint.Timestamp(rng.Int63n(30 * daySeconds)),
		})
	}

	// Three fraud rings: funds cycle through three mule accounts within
	// minutes, several times.
	rings := [][3]mint.NodeID{{11, 57, 203}, {88, 301, 144}, {250, 19, 333}}
	for r, ring := range rings {
		base := mint.Timestamp((3 + r*7) * daySeconds)
		for rep := 0; rep < 3; rep++ {
			t := base + mint.Timestamp(rep*3600)
			edges = append(edges,
				mint.Edge{Src: ring[0], Dst: ring[1], Time: t},
				mint.Edge{Src: ring[1], Dst: ring[2], Time: t + 120},
				mint.Edge{Src: ring[2], Dst: ring[0], Time: t + 300},
			)
		}
	}

	g, err := mint.NewGraph(edges)
	if err != nil {
		log.Fatal(err)
	}
	// The signature: a 3-cycle completing within 10 minutes.
	motif, err := mint.ParseMotif("fraud-cycle", 600, "A->B; B->C; C->A")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transaction network: %d accounts, %d payments over 30 days\n",
		g.NumNodes(), g.NumEdges())
	fmt.Printf("searching for %s within %d s\n\n", motif, motif.Delta)

	// Exact enumeration: collect the accounts of every detected cycle.
	suspicious := map[mint.NodeID]int{}
	detected := 0
	mint.Enumerate(g, motif, func(matched []int32) {
		detected++
		for _, id := range matched {
			e := g.Edge(mint.EdgeID(id))
			suspicious[e.Src]++
		}
	})
	fmt.Printf("detected %d rapid transaction cycles\n", detected)

	// Rank accounts by cycle participation.
	type hit struct {
		acct mint.NodeID
		n    int
	}
	var hits []hit
	for a, n := range suspicious {
		hits = append(hits, hit{a, n})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].n != hits[j].n {
			return hits[i].n > hits[j].n
		}
		return hits[i].acct < hits[j].acct
	})
	fmt.Println("accounts ranked by cycle participation:")
	for i, h := range hits {
		if i >= 9 {
			break
		}
		fmt.Printf("  account %3d: %d cycles\n", h.acct, h.n)
	}

	// Verify the injected mules are all flagged.
	flagged := 0
	for _, ring := range rings {
		for _, a := range ring {
			if suspicious[a] > 0 {
				flagged++
			}
		}
	}
	fmt.Printf("\ninjected mule accounts flagged: %d/9\n", flagged)

	// On a bank-scale feed this is the workload Mint accelerates; show the
	// modeled hardware runtime for this (small) graph.
	res, err := mint.Simulate(g, motif, mint.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mint accelerator: same %d cycles found in %.3f µs of modeled hardware time\n",
		res.Matches, res.Seconds*1e6)
}
