// Quickstart: build a temporal graph, define a δ-temporal motif, count and
// enumerate its occurrences with the exact miner, and run the same
// workload on the simulated Mint accelerator.
//
// The graph is the walk-through example of the paper's Fig 1: six
// timestamped edges over four nodes, containing exactly one valid
// three-node temporal cycle within δ = 25.
package main

import (
	"fmt"
	"log"

	"mint"
)

func main() {
	// A temporal graph is a list of directed, timestamped edges.
	g, err := mint.NewGraph([]mint.Edge{
		{Src: 0, Dst: 1, Time: 5},
		{Src: 1, Dst: 2, Time: 10},
		{Src: 2, Dst: 0, Time: 20},
		{Src: 2, Dst: 3, Time: 25},
		{Src: 1, Dst: 2, Time: 30},
		{Src: 0, Dst: 1, Time: 40},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A δ-temporal motif: edges in chronological order, all within δ.
	motif, err := mint.ParseMotif("3-cycle", 25, "A->B; B->C; C->A")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d nodes, %d edges over %d time units\n",
		g.NumNodes(), g.NumEdges(), g.TimeSpan())
	fmt.Printf("motif: %s within δ=%d\n\n", motif, motif.Delta)

	// Exact counting (Mackey et al.'s chronological edge-driven DFS).
	count := mint.Count(g, motif)
	fmt.Printf("exact count: %d\n", count)

	// Enumeration: the matched graph-edge indices, in motif order.
	mint.Enumerate(g, motif, func(edges []int32) {
		fmt.Printf("  match:")
		for _, id := range edges {
			e := g.Edge(mint.EdgeID(id))
			fmt.Printf("  %d→%d@t=%d", e.Src, e.Dst, e.Time)
		}
		fmt.Println()
	})

	// The same mining run on the simulated Mint accelerator.
	cfg := mint.DefaultSimConfig()
	cfg.PEs = 8 // a small machine is plenty for six edges
	res, err := mint.Simulate(g, motif, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMint simulation: %d matches in %d cycles (%.2f ns at 1.6 GHz)\n",
		res.Matches, res.Cycles, res.Seconds*1e9)
	fmt.Printf("tasks: %d root / %d search / %d bookkeep / %d backtrack\n",
		res.Stats.RootTasks, res.Stats.SearchTasks,
		res.Stats.BookkeepTasks, res.Stats.BacktrackTasks)
	if res.Matches != count {
		log.Fatalf("simulator disagreed with software: %d vs %d", res.Matches, count)
	}
	fmt.Println("simulator count matches the exact miner ✓")
}
