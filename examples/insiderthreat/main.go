// Insider-threat detection on an organization's communication network.
//
// Mackey et al. — the algorithm Mint accelerates — motivate temporal
// subgraph isomorphism with insider-threat hunting (paper §II-B): a
// compromised employee account shows a characteristic *relay* pattern,
// receiving material from a source and forwarding it outward within
// minutes, repeatedly. Statically the same edges look like ordinary
// collaboration; only the temporal ordering exposes the relay.
//
// This example models two weeks of email/chat logs, injects a relay
// (manager → insider → external drop, thrice within minutes), and hunts it
// with the feed-forward motif A→B, B→C, A→C — "A briefs B, B forwards to
// C, A also contacts C" is normal; the δ-tightened variant is not.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"mint"
)

const (
	employees  = 150
	messages   = 8000
	daySeconds = 86_400
)

func main() {
	rng := rand.New(rand.NewSource(99))
	var edges []mint.Edge

	// Normal traffic: clustered team communication over 14 days (teams of
	// 10 talk mostly internally, occasionally across teams).
	for i := 0; i < messages; i++ {
		team := rng.Intn(employees / 10)
		src := mint.NodeID(team*10 + rng.Intn(10))
		var dst mint.NodeID
		if rng.Float64() < 0.8 {
			dst = mint.NodeID(team*10 + rng.Intn(10))
		} else {
			dst = mint.NodeID(rng.Intn(employees))
		}
		if src == dst {
			dst = (dst + 1) % employees
		}
		edges = append(edges, mint.Edge{
			Src: src, Dst: dst,
			Time: mint.Timestamp(rng.Int63n(14 * daySeconds)),
		})
	}

	// The relay: source 17 sends to insider 42, who forwards to external
	// contractor account 149 within two minutes; the source also pings the
	// contractor (scheduling cover traffic). Repeated on three days.
	const source, insider, drop = 17, 42, 149
	for day := 2; day <= 6; day += 2 {
		t := mint.Timestamp(day*daySeconds + 9*3600)
		edges = append(edges,
			mint.Edge{Src: source, Dst: insider, Time: t},
			mint.Edge{Src: insider, Dst: drop, Time: t + 90},
			mint.Edge{Src: source, Dst: drop, Time: t + 200},
		)
	}

	g, err := mint.NewGraph(edges)
	if err != nil {
		log.Fatal(err)
	}
	// Relay signature: feed-forward triangle completing within 5 minutes.
	motif, err := mint.ParseMotif("relay", 300, "A->B; B->C; A->C")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("communication log: %d employees, %d messages over 14 days\n",
		g.NumNodes(), g.NumEdges())
	fmt.Printf("hunting %s within %d s\n\n", motif, motif.Delta)

	// Score each (A,B,C) assignment by occurrence count: the middle node B
	// is the suspected relay.
	type triple struct{ a, b, c mint.NodeID }
	occurrences := map[triple]int{}
	mint.Enumerate(g, motif, func(matched []int32) {
		e0 := g.Edge(mint.EdgeID(matched[0])) // A→B
		e1 := g.Edge(mint.EdgeID(matched[1])) // B→C
		occurrences[triple{e0.Src, e0.Dst, e1.Dst}]++
	})

	type scored struct {
		t triple
		n int
	}
	var ranked []scored
	for t, n := range occurrences {
		ranked = append(ranked, scored{t, n})
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].n > ranked[j].n })

	fmt.Printf("distinct relay triples: %d\n", len(ranked))
	fmt.Println("top suspected relays (source → relay → destination):")
	for i, s := range ranked {
		if i >= 5 {
			break
		}
		fmt.Printf("  %3d → %3d → %3d: %d occurrences\n", s.t.a, s.t.b, s.t.c, s.n)
	}
	if len(ranked) > 0 && ranked[0].t == (triple{source, insider, drop}) {
		fmt.Printf("\ninjected relay (%d → %d → %d) is the top hit ✓\n", source, insider, drop)
	} else {
		fmt.Println("\nWARNING: injected relay not ranked first")
	}

	// Contrast with the asynchronous task-queue execution of the paper's
	// programming model — identical count, schedule-independent.
	qCount := mint.CountTaskQueue(g, motif, 4, 64)
	total := int64(0)
	for _, s := range ranked {
		total += int64(s.n)
	}
	fmt.Printf("task-queue runner count: %d (enumerated %d) ✓\n", qCount, total)
}
