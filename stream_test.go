package mint

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"mint/internal/testutil"
)

func streamAppend(t *testing.T, s *Stream, seq uint64, edges []Edge) AppendResult {
	t.Helper()
	res, err := s.Append(context.Background(), "test", seq, edges)
	if err != nil {
		t.Fatalf("Append(seq=%d): %v", seq, err)
	}
	return res
}

func TestStreamAppendAndReopen(t *testing.T) {
	dir := t.TempDir()
	s, rec, err := OpenStream(dir, StreamOptions{})
	if err != nil {
		t.Fatalf("OpenStream: %v", err)
	}
	if rec.Records != 0 || rec.Truncated {
		t.Fatalf("fresh stream recovered %+v", rec)
	}
	g := testutil.RandomGraph(rand.New(rand.NewSource(3)), 12, 60, 500)
	for i := 0; i < len(g.Edges); i += 10 {
		end := i + 10
		if end > len(g.Edges) {
			end = len(g.Edges)
		}
		streamAppend(t, s, uint64(i/10+1), g.Edges[i:end])
	}
	live, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Edges) != len(g.Edges) {
		t.Fatalf("live graph has %d edges, want %d", len(live.Edges), len(g.Edges))
	}
	info := s.Info()
	s.Close()

	// Cold reopen: replay must rebuild the identical live graph — the
	// "cold full mine of the same prefix" target of the differential gate.
	s2, rec2, err := OpenStream(dir, StreamOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if rec2.Truncated {
		t.Fatalf("clean reopen reported truncation: %s", rec2.Detail)
	}
	live2, _ := s2.Graph()
	if !reflect.DeepEqual(live.Edges, live2.Edges) {
		t.Fatalf("replayed graph differs from live graph")
	}
	if info2 := s2.Info(); info2.Fingerprint != info.Fingerprint || info2.Seq != info.Seq {
		t.Fatalf("replayed info %+v != live info %+v", info2, info)
	}
	m := M1(300)
	if a, b := Count(live, m), Count(live2, m); a != b {
		t.Fatalf("counts differ after replay: %d vs %d", a, b)
	}
}

func TestStreamIdempotentRetry(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	batch := []Edge{{Src: 1, Dst: 2, Time: 10}, {Src: 2, Dst: 3, Time: 20}}
	first := streamAppend(t, s, 1, batch)
	if first.Dup || first.Accepted != 2 {
		t.Fatalf("first append: %+v", first)
	}
	retry := streamAppend(t, s, 1, batch)
	if !retry.Dup {
		t.Fatalf("retry not detected as duplicate: %+v", retry)
	}
	live, _ := s.Graph()
	if len(live.Edges) != 2 {
		t.Fatalf("duplicate applied: %d edges", len(live.Edges))
	}
}

func TestStreamSlidingWindowEviction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{Window: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		streamAppend(t, s, uint64(i+1), []Edge{{Src: NodeID(i % 5), Dst: NodeID(i%5 + 1), Time: Timestamp(i * 10)}})
	}
	info := s.Info()
	if info.Cutoff != 290-100 {
		t.Fatalf("cutoff = %d, want %d", info.Cutoff, 190)
	}
	live, _ := s.Graph()
	for _, e := range live.Edges {
		if e.Time < info.Cutoff {
			t.Fatalf("evicted edge %v still live (cutoff %d)", e, info.Cutoff)
		}
	}
	// A late edge below the cutoff is dropped deterministically.
	res := streamAppend(t, s, 31, []Edge{{Src: 1, Dst: 2, Time: 5}})
	if res.Accepted != 0 || res.Evicted != 1 {
		t.Fatalf("late edge: %+v", res)
	}
	s.Close()
	// Replay applies the same eviction: identical live set.
	s2, _, err := OpenStream(dir, StreamOptions{Window: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	live2, _ := s2.Graph()
	if !reflect.DeepEqual(live.Edges, live2.Edges) {
		t.Fatalf("eviction not reproduced on replay")
	}
}

func TestStreamStandingQueryIncremental(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := testutil.RandomGraph(rand.New(rand.NewSource(11)), 10, 120, 900)
	m1, m2 := M1(200), M2(350)
	if _, err := s.Register(context.Background(), "q1", m1); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := s.Register(context.Background(), "q2", m2); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < len(g.Edges); i += 7 {
		end := i + 7
		if end > len(g.Edges) {
			end = len(g.Edges)
		}
		streamAppend(t, s, uint64(i/7+1), g.Edges[i:end])
		live, _ := s.Graph()
		for _, sc := range s.Standing() {
			if sc.Stale {
				t.Fatalf("standing %q stale without a budget: %s", sc.Name, sc.Reason)
			}
			var want int64
			switch sc.Name {
			case "q1":
				want = Count(live, m1)
			case "q2":
				want = Count(live, m2)
			}
			if sc.Count != want {
				t.Fatalf("after batch %d: standing %q = %d, full mine = %d", i/7+1, sc.Name, sc.Count, want)
			}
		}
	}
	ok, err := s.Unregister("q1")
	if err != nil || !ok {
		t.Fatalf("Unregister(q1) = %v, %v; want true, nil", ok, err)
	}
	ok, err = s.Unregister("q1")
	if err != nil || ok {
		t.Fatalf("second Unregister(q1) = %v, %v; want false, nil", ok, err)
	}
}

func TestStreamStandingQueryWithEviction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{Workers: 2, Window: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := M1(150)
	if _, err := s.Register(context.Background(), "q", m); err != nil {
		t.Fatal(err)
	}
	g := testutil.RandomGraph(rand.New(rand.NewSource(23)), 8, 150, 1200)
	evictedSome := false
	for i := 0; i < len(g.Edges); i += 5 {
		end := i + 5
		if end > len(g.Edges) {
			end = len(g.Edges)
		}
		res := streamAppend(t, s, uint64(i/5+1), g.Edges[i:end])
		if res.Evicted > 0 {
			evictedSome = true
		}
		live, _ := s.Graph()
		sc := s.Standing()[0]
		if sc.Stale {
			t.Fatalf("stale: %s", sc.Reason)
		}
		if want := Count(live, m); sc.Count != want {
			t.Fatalf("batch %d: standing=%d full=%d (cutoff %d)", i/5+1, sc.Count, want, s.Info().Cutoff)
		}
	}
	if !evictedSome {
		t.Fatalf("test never evicted; widen the graph span or shrink the window")
	}
}

// TestStreamStandingQueryEvictionNegativeTimestamps pins the eviction
// fold for live sets that hold negative timestamps (the wire accepts any
// int64 time). The committed baseline starts with no cutoff at all, so
// the first eviction's "what left the window" mine must be rooted from
// the beginning of time — rooting it at the zero timestamp would skip
// every negative-rooted instance and silently commit wrong counts.
func TestStreamStandingQueryEvictionNegativeTimestamps(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{Workers: 2, Window: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := M1(50)
	// Batch 1 lives entirely below zero and forms M1 (3-cycle) instances
	// there.
	neg := []Edge{
		{Src: 1, Dst: 2, Time: -90}, {Src: 2, Dst: 3, Time: -80}, {Src: 3, Dst: 1, Time: -70},
		{Src: 4, Dst: 5, Time: -60}, {Src: 5, Dst: 6, Time: -55}, {Src: 6, Dst: 4, Time: -50},
	}
	streamAppend(t, s, 1, neg)
	reg, err := s.Register(context.Background(), "q", m)
	if err != nil {
		t.Fatal(err)
	}
	liveNeg, _ := s.Graph()
	if want := Count(liveNeg, m); reg.Count != want || want == 0 {
		t.Fatalf("negative-time baseline: standing=%d full=%d (want non-zero)", reg.Count, want)
	}
	// Batch 2 advances the watermark so the cutoff lands at -30: still
	// negative, and everything from batch 1 evicts. The standing count
	// must track a cold mine of the post-eviction live graph exactly.
	pos := []Edge{
		{Src: 7, Dst: 8, Time: 40}, {Src: 8, Dst: 9, Time: 55}, {Src: 9, Dst: 7, Time: 70},
	}
	res := streamAppend(t, s, 2, pos)
	if res.Evicted != len(neg) {
		t.Fatalf("evicted %d edges, want %d (cutoff %d)", res.Evicted, len(neg), s.Info().Cutoff)
	}
	live, _ := s.Graph()
	sc := s.Standing()[0]
	if sc.Stale {
		t.Fatalf("stale: %s", sc.Reason)
	}
	if want := Count(live, m); sc.Count != want {
		t.Fatalf("after negative-window eviction: standing=%d full=%d (cutoff %d)",
			sc.Count, want, s.Info().Cutoff)
	}
}

// TestStreamInfoFingerprintCached pins the fingerprint cache: Info on an
// unchanged stream returns the identical fingerprint without rehashing
// behavior changes, and an accepted append invalidates it.
func TestStreamInfoFingerprintCached(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	streamAppend(t, s, 1, []Edge{{Src: 1, Dst: 2, Time: 10}})
	a, b := s.Info().Fingerprint, s.Info().Fingerprint
	if a == "" || a != b {
		t.Fatalf("fingerprint unstable across idle Infos: %q vs %q", a, b)
	}
	streamAppend(t, s, 2, []Edge{{Src: 2, Dst: 3, Time: 20}})
	if c := s.Info().Fingerprint; c == a {
		t.Fatalf("fingerprint did not change after an accepted append")
	}
}

func TestStreamStaleOnTruncatedIntegration(t *testing.T) {
	dir := t.TempDir()
	// A 1-node budget: the register-time mine on the empty graph passes
	// (nothing to expand), the first real integration cannot.
	s, _, err := OpenStream(dir, StreamOptions{
		Workers:         1,
		IntegrateBudget: Budget{MaxNodes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := M1(500)
	reg, err := s.Register(context.Background(), "q", m)
	if err != nil {
		t.Fatalf("Register on empty stream: %v", err)
	}
	if reg.Count != 0 {
		t.Fatalf("empty-stream count = %d", reg.Count)
	}
	g := testutil.RandomGraph(rand.New(rand.NewSource(5)), 6, 80, 400)
	res := streamAppend(t, s, 1, g.Edges)
	if !res.Stale {
		t.Fatalf("append did not report stale standing counts: %+v", res)
	}
	sc := s.Standing()[0]
	if !sc.Stale || sc.Reason == "" {
		t.Fatalf("standing not loudly stale: %+v", sc)
	}
	// Stale = frozen at the last committed value, never silently wrong.
	// (The registration itself is a WAL record now, so the committed
	// position is the registration's seq, not 0.)
	if sc.Count != 0 || sc.Seq != reg.Seq {
		t.Fatalf("stale count moved: %+v (registered at seq %d)", sc, reg.Seq)
	}
	// The graph itself is live and exact regardless.
	live, _ := s.Graph()
	if len(live.Edges) != len(g.Edges) {
		t.Fatalf("live graph lost edges while stale")
	}
	if err := s.Refresh(context.Background()); err == nil {
		t.Fatalf("Refresh succeeded under a 1-node budget")
	}
}

func TestStreamSnapshotCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{
		SnapshotEvery: 4,
		SegmentBytes:  512,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := testutil.RandomGraph(rand.New(rand.NewSource(9)), 10, 90, 700)
	for i := 0; i < len(g.Edges); i += 6 {
		end := i + 6
		if end > len(g.Edges) {
			end = len(g.Edges)
		}
		streamAppend(t, s, uint64(i/6+1), g.Edges[i:end])
	}
	live, _ := s.Graph()
	s.Close()
	s2, rec, err := OpenStream(dir, StreamOptions{SnapshotEvery: 4, SegmentBytes: 512})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer s2.Close()
	if rec.SnapshotSeq == 0 {
		t.Fatalf("no snapshot was taken (SnapshotEvery=4, %d appends)", (len(g.Edges)+5)/6)
	}
	live2, _ := s2.Graph()
	if !reflect.DeepEqual(live.Edges, live2.Edges) {
		t.Fatalf("snapshot+tail replay differs from live state")
	}
	// The idempotency ledger survived the snapshot: retrying the last
	// batch is a dup.
	last := uint64((len(g.Edges) + 5) / 6)
	res, err := s2.Append(context.Background(), "test", last, nil)
	if err != nil || !res.Dup {
		t.Fatalf("ledger lost through snapshot: %+v err=%v", res, err)
	}
}

func TestStreamRegisterRejectsTruncatedInitialMine(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{
		Workers:         1,
		IntegrateBudget: Budget{MaxNodes: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g := testutil.RandomGraph(rand.New(rand.NewSource(31)), 6, 100, 500)
	streamAppend(t, s, 1, g.Edges)
	if _, err := s.Register(context.Background(), "q", M1(400)); err == nil {
		t.Fatalf("Register accepted a truncated initial mine")
	}
}

func TestStreamOutOfOrderTimestamps(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	m := M1(100)
	if _, err := s.Register(context.Background(), "q", m); err != nil {
		t.Fatal(err)
	}
	// Arrival order deliberately disagrees with timestamp order; standing
	// counts must still match a full mine after every batch.
	batches := [][]Edge{
		{{Src: 0, Dst: 1, Time: 50}, {Src: 1, Dst: 2, Time: 40}},
		{{Src: 2, Dst: 0, Time: 60}, {Src: 0, Dst: 1, Time: 10}},
		{{Src: 1, Dst: 2, Time: 55}, {Src: 2, Dst: 0, Time: 45}},
		{{Src: 2, Dst: 0, Time: 90}, {Src: 1, Dst: 0, Time: 20}},
	}
	for i, b := range batches {
		streamAppend(t, s, uint64(i+1), b)
		live, _ := s.Graph()
		sc := s.Standing()[0]
		if sc.Stale || sc.Count != Count(live, m) {
			t.Fatalf("batch %d: standing=%+v full=%d", i, sc, Count(live, m))
		}
	}
}
