package mint

import (
	"context"
	"fmt"
	"io"

	"mint/internal/cyclemine"
	"mint/internal/datasets"
	"mint/internal/gpumodel"
	hw "mint/internal/mint"
	"mint/internal/power"
	"mint/internal/presto"
	"mint/internal/task"
	"mint/internal/temporal"
)

// Core data types, re-exported from the temporal substrate.
type (
	// Graph is an immutable temporal graph: a timestamp-sorted edge list
	// plus per-node in/out edge-index lists.
	Graph = temporal.Graph
	// Motif is a δ-temporal motif: a time-ordered directed edge sequence
	// with a duration bound.
	Motif = temporal.Motif
	// MotifEdge is one directed motif edge between motif-local nodes.
	MotifEdge = temporal.MotifEdge
	// Edge is one temporal edge of a graph.
	Edge = temporal.Edge
	// NodeID identifies a graph node.
	NodeID = temporal.NodeID
	// EdgeID indexes a graph's temporal edge list.
	EdgeID = temporal.EdgeID
	// Timestamp is a point in time (dataset-defined unit; the bundled
	// datasets use seconds).
	Timestamp = temporal.Timestamp
)

// DeltaHour is one hour in the seconds convention of the bundled datasets
// — the δ the paper's evaluation uses throughout.
const DeltaHour = temporal.DeltaHour

// NewGraph builds a Graph from an edge multiset (copied, then sorted by
// timestamp).
func NewGraph(edges []Edge) (*Graph, error) { return temporal.NewGraph(edges) }

// LoadSNAP reads a temporal graph in SNAP text format ("src dst time"
// lines) from r.
func LoadSNAP(r io.Reader) (*Graph, error) { return temporal.ReadSNAP(r) }

// NewMotif validates and constructs a motif from an explicit edge list.
func NewMotif(name string, delta Timestamp, edges []MotifEdge) (*Motif, error) {
	return temporal.NewMotif(name, delta, edges)
}

// ParseMotif parses the compact motif syntax, e.g. "A->B; B->C; C->A".
func ParseMotif(name string, delta Timestamp, spec string) (*Motif, error) {
	return temporal.ParseMotif(name, delta, spec)
}

// M1–M4 are the paper's evaluation motifs (Fig 9): the 3-node cycle, the
// 3-node feed-forward triangle, the 4-node cycle, and the 5-node out-star.
func M1(delta Timestamp) *Motif { return temporal.M1(delta) }
func M2(delta Timestamp) *Motif { return temporal.M2(delta) }
func M3(delta Timestamp) *Motif { return temporal.M3(delta) }
func M4(delta Timestamp) *Motif { return temporal.M4(delta) }

// EvaluationMotifs returns M1–M4 at the given δ, in paper order.
func EvaluationMotifs(delta Timestamp) []*Motif { return temporal.EvaluationMotifs(delta) }

// MotifByName resolves a named evaluation motif ("M1".."M4") at δ — the
// lookup serving layers use for motif fields in requests.
func MotifByName(name string, delta Timestamp) (*Motif, error) {
	for _, m := range temporal.EvaluationMotifs(delta) {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("mint: unknown motif %q (want M1..M4)", name)
}

// LoadSNAPFile reads a temporal graph in SNAP text format from a file.
func LoadSNAPFile(path string) (*Graph, error) { return temporal.LoadSNAPFile(path) }

// Count returns the exact number of δ-temporal motif instances of m in g,
// using the sequential chronological edge-driven algorithm of Mackey et
// al. — the algorithm Mint accelerates. It is an uncancellable, unbounded
// shim over CountCtx.
func Count(g *Graph, m *Motif) int64 {
	return CountCtx(context.Background(), g, m, Budget{}).Matches
}

// CountParallel is Count on a work-stealing worker pool (workers < 1 means
// GOMAXPROCS). Search trees are independent, so the count is exact. It is
// an uncancellable shim over CountParallelCtx (a worker panic, converted
// into an error there, re-panics here).
func CountParallel(g *Graph, m *Motif, workers int) int64 {
	res, err := CountParallelCtx(context.Background(), g, m, workers, Budget{})
	if err != nil {
		panic(err)
	}
	return res.Matches
}

// CountTaskQueue runs the paper's asynchronous task-queue programming
// model (§IV, Fig 5) in software: contexts flow through a bounded queue,
// each processed task enqueueing its child task. It is an uncancellable
// shim over CountTaskQueueCtx.
func CountTaskQueue(g *Graph, m *Motif, workers, contexts int) int64 {
	return task.RunQueue(g, m, workers, contexts)
}

// CountCycles counts temporal k-cycles with a pattern-specific miner (a
// 2SCENT-style time-respecting walk, §II-C) — faster than the generic
// engine on this one motif family, identical counts by construction.
func CountCycles(g *Graph, k int, delta Timestamp) (int64, error) {
	st, err := cyclemine.Count(g, k, delta)
	if err != nil {
		return 0, err
	}
	return st.Matches, nil
}

// Enumerate streams every match as its graph-edge index sequence (in motif
// order) to visit. The slice is reused across calls; copy it to retain.
// It is an uncancellable shim over EnumerateCtx.
func Enumerate(g *Graph, m *Motif, visit func(edges []int32)) {
	EnumerateCtx(context.Background(), g, m, Budget{}, visit)
}

type enumProbe struct{ visit func([]int32) }

func (p enumProbe) NeighborhoodAccess(int32, bool, int, int, int32) {}
func (p enumProbe) Match(edges []int32)                             { p.visit(edges) }

// ApproxConfig configures the PRESTO-style sampling estimator.
type ApproxConfig = presto.Config

// DefaultApproxConfig returns a reasonable sampling operating point.
func DefaultApproxConfig() ApproxConfig { return presto.DefaultConfig() }

// EstimateApprox estimates the motif count by uniform temporal-window
// sampling (PRESTO-A), running the exact miner inside each window. The
// estimator is unbiased; accuracy improves with cfg.Windows.
func EstimateApprox(g *Graph, m *Motif, cfg ApproxConfig) (float64, error) {
	res, err := presto.Estimate(g, m, cfg)
	if err != nil {
		return 0, err
	}
	return res.Estimate, nil
}

// Hardware simulation --------------------------------------------------

// SimConfig configures the cycle-level Mint accelerator simulator.
type SimConfig = hw.Config

// SimResult is a simulation outcome: matches, cycles, modeled seconds,
// memory-system statistics.
type SimResult = hw.Result

// DefaultSimConfig returns the paper's Table II machine: 512 PEs, 4 MB
// banked cache, 8-channel DDR4-3200, 1.6 GHz, search index memoization on.
func DefaultSimConfig() SimConfig { return hw.DefaultConfig() }

// Simulate runs the Mint accelerator simulator. Match counts are exact
// (the simulator drives the same task transitions as Count).
func Simulate(g *Graph, m *Motif, cfg SimConfig) (SimResult, error) {
	return hw.Simulate(g, m, cfg)
}

// GPUConfig configures the SIMT timing model of the GPU baseline.
type GPUConfig = gpumodel.Config

// DefaultGPUConfig models the paper's RTX 2080 Ti.
func DefaultGPUConfig() GPUConfig { return gpumodel.DefaultConfig() }

// SimulateGPU runs the Mackey-on-GPU SIMT timing model.
func SimulateGPU(g *Graph, m *Motif, cfg GPUConfig) (gpumodel.Result, error) {
	return gpumodel.Run(g, m, cfg)
}

// AreaPower returns the 28 nm area/power roll-up (Fig 14) for a Mint
// configuration.
func AreaPower(pes, cacheBanks, cacheKBPerBank int) (power.Breakdown, error) {
	return power.Model(pes, cacheBanks, cacheKBPerBank)
}

// Datasets --------------------------------------------------------------

// DatasetSpec describes one of the paper's six evaluation datasets.
type DatasetSpec = datasets.Spec

// Datasets lists the paper's six datasets with their Table I statistics.
func Datasets() []DatasetSpec { return datasets.Table1() }

// Dataset returns the named dataset ("wiki-talk" or "wt", etc.) as a
// deterministic synthetic graph scaled by scale (0 < scale ≤ 1; 1 is the
// full Table I size). If dir is non-empty and contains <name>.txt in SNAP
// format, the real file is loaded instead.
func Dataset(name, dir string, scale float64) (*Graph, error) {
	spec, err := datasets.ByName(name)
	if err != nil {
		return nil, err
	}
	return datasets.Load(spec, dir, scale)
}
