# Tier-1 verification for the Mint reproduction. `make tier1` is the
# gate every PR must keep green: build, vet, the full test suite, and the
# race-enabled run of the concurrent miners.

GO ?= go

.PHONY: tier1 build vet test race fuzz bench bench-report bench-compare serve-check

tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Serving-layer verification: the full mintd suite under -race —
# admission/breaker/registry units, endpoint contracts, the chaos soak
# (every response exact, loudly degraded, or cleanly shed), and the
# in-process + subprocess SIGTERM drain tests.
# Serving suite: worker core (admission, breakers, registry, chaos
# soak), the scatter-gather coordinator (internal/server/gather, covered
# by the ... wildcard), shard planning, the streaming-ingest WAL
# (torn-tail repair, corrupt-log property tests, chaos), and the
# binary-level drain, coordinator, and SIGKILL-ingest-recovery
# end-to-end tests.
serve-check:
	$(GO) test -race -count=1 ./internal/server/... ./internal/shard/ ./internal/edgelog/ ./internal/replica/ ./cmd/mintd/

# Short fuzz passes (native Go fuzzing): the SNAP loader, the motif
# parser round trip, the co-mining planner (arbitrary motif lists
# must partition exactly into δ-grouped prefix tries, never panic),
# and the WAL decoder (arbitrary segment bytes must yield records, a
# clean torn-tail, or a loud corruption error — never a panic).
fuzz:
	$(GO) test ./internal/temporal/ -run='^$$' -fuzz=FuzzReadSNAP -fuzztime=30s
	$(GO) test ./internal/temporal/ -run='^$$' -fuzz=FuzzMotifParse -fuzztime=30s
	$(GO) test ./internal/comine/ -run='^$$' -fuzz=FuzzMotifSetPlan -fuzztime=30s
	$(GO) test ./internal/edgelog/ -run='^$$' -fuzz=FuzzEdgeLogDecode -fuzztime=30s

# Sequential hot-path benchmarks (the <2% regression budget lives here).
bench:
	$(GO) test -run='^$$' -bench=BenchmarkCoreMinerMotifs -benchtime=2x -count=5 .

# Observability overhead report: M1–M4 sequential miner with the metrics
# registry off and on; writes BENCH_obs.json and runs the <3% guard. Also
# replays the hot-path A/B measurement against the committed
# BENCH_hotpath.json and fails on a >10% speedup regression (ratios, not
# absolute ns/op, so the guard holds across machines).
bench-report:
	$(GO) run ./cmd/benchreport -out BENCH_obs.json
	$(GO) test ./internal/mackey/ -run=TestObsOverheadGuard -bench=BenchmarkSeqMinerObs -benchtime=1x -v
	$(GO) run ./cmd/benchreport -hotpath -check

# Hot-path before/after comparison: Baseline (pre-overhaul) vs optimized
# (pooled state + window-cached searches) on M1–M4 over a seeded Table I
# dataset sample; rewrites BENCH_hotpath.json with ns/op and allocs/op for
# both sides plus the co-mining row (one co-mined M1–M4 pass vs four
# sequential per-motif runs). Run this to refresh the committed
# reference after deliberate hot-path changes.
bench-compare:
	$(GO) run ./cmd/benchreport -hotpath -out BENCH_hotpath.json
