# Tier-1 verification for the Mint reproduction. `make tier1` is the
# gate every PR must keep green: build, vet, the full test suite, and the
# race-enabled run of the concurrent miners.

GO ?= go

.PHONY: tier1 build vet test race fuzz bench bench-report

tier1: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the SNAP loader (native Go fuzzing).
fuzz:
	$(GO) test ./internal/temporal/ -run='^$$' -fuzz=FuzzReadSNAP -fuzztime=30s

# Sequential hot-path benchmarks (the <2% regression budget lives here).
bench:
	$(GO) test -run='^$$' -bench=BenchmarkCoreMinerMotifs -benchtime=2x -count=5 .

# Observability overhead report: M1–M4 sequential miner with the metrics
# registry off and on; writes BENCH_obs.json and runs the <3% guard.
bench-report:
	$(GO) run ./cmd/benchreport -out BENCH_obs.json
	$(GO) test ./internal/mackey/ -run=TestObsOverheadGuard -bench=BenchmarkSeqMinerObs -benchtime=1x -v
