package mint

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mint/internal/temporal"
)

// MotifCount pairs a motif with its exact occurrence count.
type MotifCount struct {
	Motif   *Motif
	Count   int64
	Density float64 // count per thousand temporal edges

	// Truncated marks a count cut short by the profile's context or
	// shared budget; Count is then an exact lower bound for this motif,
	// and StopReason says what fired. The profile co-mines the set under
	// one budget, so all motifs of a stopped δ-group (and every group
	// after the stop) report the same reason.
	Truncated  bool
	StopReason StopReason
}

// MotifLibrary returns a catalog of named small motifs — cycles, chains,
// stars, ping-pongs, fan-out/fan-in, feed-forward — covering the
// application families the paper surveys (§II-B), each with window δ.
func MotifLibrary(delta Timestamp) []*Motif { return temporal.Library(delta) }

// Profile computes the temporal motif fingerprint of a graph: the exact
// count of every motif in the list. Motif distributions are stronger
// features than their static counterparts for network classification
// (§II-B, citing Tu et al.), and per-node variants serve as features for
// temporal graph learning. Counting co-mines the whole set (same-δ
// motifs share one traversal, see CountManyCtx); workers < 1 means
// GOMAXPROCS. Profile is ProfileCtx with no cancellation or budget; it
// panics on a worker failure (the historical behavior).
func Profile(g *Graph, motifs []*Motif, workers int) []MotifCount {
	out, err := ProfileCtx(context.Background(), g, motifs, workers, Budget{})
	if err != nil {
		panic(err)
	}
	return out
}

// ProfileCtx is Profile bounded by a context and ONE shared budget:
// the whole fingerprint is produced by a single co-mined run
// (CountManyCtx), so a MaxNodes or Deadline cap bounds the profile as
// a whole — not each motif separately, as the pre-co-mining profiler
// did. Motifs cut short are marked Truncated with their exact partial
// counts — fingerprints stay usable as lower bounds — and once the
// shared controller stops, the remaining motif groups return
// immediately, each marked Truncated. A worker failure aborts the
// profile and returns the error alongside the counts accumulated so
// far.
func ProfileCtx(ctx context.Context, g *Graph, motifs []*Motif, workers int, b Budget) ([]MotifCount, error) {
	res, err := CountManyCtx(ctx, g, motifs, workers, b)
	out := make([]MotifCount, len(res.PerMotif))
	perK := 1000.0 / float64(max(1, g.NumEdges()))
	for i, pm := range res.PerMotif {
		out[i] = MotifCount{
			Motif:      pm.Motif,
			Count:      pm.Matches,
			Density:    float64(pm.Matches) * perK,
			Truncated:  pm.Truncated,
			StopReason: pm.StopReason,
		}
	}
	return out, err
}

// FingerprintDistance compares two motif fingerprints (over the same motif
// list) with the L1 distance of their log-scaled densities — a simple,
// scale-robust dissimilarity for classifying networks by temporal
// behavior. It panics if the fingerprints cover different motif lists.
func FingerprintDistance(a, b []MotifCount) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mint: fingerprint lengths differ: %d vs %d", len(a), len(b)))
	}
	d := 0.0
	for i := range a {
		if a[i].Motif.Name != b[i].Motif.Name {
			panic(fmt.Sprintf("mint: fingerprint motif mismatch at %d: %s vs %s",
				i, a[i].Motif.Name, b[i].Motif.Name))
		}
		d += math.Abs(math.Log1p(a[i].Density) - math.Log1p(b[i].Density))
	}
	return d
}

// LocalCounts computes per-node local motif counts: for every graph node,
// the number of motif occurrences it participates in (once per occurrence,
// regardless of how many of the occurrence's edges touch it). Local
// temporal motif counts serve as node features for temporal graph learning
// and improve GNN expressivity (§I, citing Bouritsas et al. and Rossi et
// al.). The slice is indexed by NodeID.
func LocalCounts(g *Graph, m *Motif) []int64 {
	counts := make([]int64, g.NumNodes())
	var touched [2 * temporal.MaxMotifEdges]NodeID
	Enumerate(g, m, func(edges []int32) {
		n := 0
		for _, id := range edges {
			e := g.Edge(EdgeID(id))
			for _, u := range []NodeID{e.Src, e.Dst} {
				dup := false
				for _, v := range touched[:n] {
					if v == u {
						dup = true
						break
					}
				}
				if !dup {
					touched[n] = u
					n++
					counts[u]++
				}
			}
		}
	})
	return counts
}

// TopMotifs returns the fingerprint sorted by descending density.
func TopMotifs(profile []MotifCount) []MotifCount {
	out := make([]MotifCount, len(profile))
	copy(out, profile)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Density > out[j].Density })
	return out
}
