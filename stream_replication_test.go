package mint

// Stream-level replication tests: durable standing-query registrations
// (WAL records + snapshots), the verbatim ApplyReplicated mirror path,
// and snapshot bootstrap via InstallSnapshot.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"mint/internal/testutil"
)

func TestStreamStandingSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g := testutil.RandomGraph(rand.New(rand.NewSource(7)), 10, 80, 600)
	m1, m2 := M1(200), M2(350)
	if _, err := s.Register(context.Background(), "q1", m1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(context.Background(), "q2", m2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(g.Edges); i += 9 {
		end := i + 9
		if end > len(g.Edges) {
			end = len(g.Edges)
		}
		streamAppend(t, s, uint64(i/9+1), g.Edges[i:end])
	}
	if ok, err := s.Unregister("q2"); err != nil || !ok {
		t.Fatalf("Unregister(q2) = %v, %v", ok, err)
	}
	live, _ := s.Graph()
	want1 := Count(live, m1)
	s.Close()

	// Reopen: q1 restored from the WAL and reseeded exact; q2's durable
	// unregister also replays, so it stays gone.
	s2, _, err := OpenStream(dir, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	board := s2.Standing()
	if len(board) != 1 || board[0].Name != "q1" {
		t.Fatalf("restored board = %+v, want exactly q1", board)
	}
	if board[0].Stale {
		t.Fatalf("restored q1 still stale after reseed: %s", board[0].Reason)
	}
	if board[0].Count != want1 {
		t.Fatalf("restored q1 = %d, full mine = %d", board[0].Count, want1)
	}
}

func TestStreamStandingSurvivesSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := OpenStream(dir, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m := M1(250)
	if _, err := s.Register(context.Background(), "q", m); err != nil {
		t.Fatal(err)
	}
	g := testutil.RandomGraph(rand.New(rand.NewSource(9)), 8, 60, 500)
	streamAppend(t, s, 1, g.Edges)
	// Compact everything — including the standing registration record —
	// into a snapshot. The board must ride along in the snapshot itself.
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	live, _ := s.Graph()
	want := Count(live, m)
	s.Close()

	s2, _, err := OpenStream(dir, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	board := s2.Standing()
	if len(board) != 1 || board[0].Name != "q" {
		t.Fatalf("board after snapshot compaction = %+v", board)
	}
	if board[0].Stale || board[0].Count != want {
		t.Fatalf("snapshot-restored q: stale=%v count=%d want %d (%s)", board[0].Stale, board[0].Count, want, board[0].Reason)
	}
}

func TestStreamApplyReplicatedMirror(t *testing.T) {
	src, _, err := OpenStream(t.TempDir(), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, _, err := OpenStream(t.TempDir(), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	g := testutil.RandomGraph(rand.New(rand.NewSource(13)), 12, 100, 800)
	m := M1(300)
	if _, err := src.Register(context.Background(), "q", m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(g.Edges); i += 11 {
		end := i + 11
		if end > len(g.Edges) {
			end = len(g.Edges)
		}
		streamAppend(t, src, uint64(i/11+1), g.Edges[i:end])
	}
	if err := src.BumpEpoch(2); err != nil {
		t.Fatal(err)
	}

	// Ship the whole history record-by-record, the follower's apply path.
	recs, tail, err := src.ReadRecords(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tail != 0 {
		t.Fatalf("tail bytes after full read = %d", tail)
	}
	for _, r := range recs {
		if err := dst.ApplyReplicated(r); err != nil {
			t.Fatalf("apply seq %d: %v", r.Seq, err)
		}
	}
	si, di := src.Info(), dst.Info()
	if di.Fingerprint != si.Fingerprint || di.Seq != si.Seq || di.Epoch != si.Epoch {
		t.Fatalf("mirror info %+v != source %+v", di, si)
	}
	// The mirrored standing board is present but stale until a refresh
	// (catch-up does not mine per record); Refresh makes it exact.
	board := dst.Standing()
	if len(board) != 1 || board[0].Name != "q" {
		t.Fatalf("mirrored board = %+v", board)
	}
	if err := dst.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	srcLive, _ := src.Graph()
	board = dst.Standing()
	if board[0].Stale || board[0].Count != Count(srcLive, m) {
		t.Fatalf("refreshed mirror q: stale=%v count=%d want %d", board[0].Stale, board[0].Count, Count(srcLive, m))
	}
	dstLive, _ := dst.Graph()
	if !reflect.DeepEqual(srcLive.Edges, dstLive.Edges) {
		t.Fatal("mirrored live edges differ from source")
	}
}

func TestStreamInstallSnapshotBootstrap(t *testing.T) {
	src, _, err := OpenStream(t.TempDir(), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	m := M1(200)
	if _, err := src.Register(context.Background(), "q", m); err != nil {
		t.Fatal(err)
	}
	g := testutil.RandomGraph(rand.New(rand.NewSource(21)), 9, 70, 500)
	streamAppend(t, src, 1, g.Edges[:40])
	if err := src.Snapshot(); err != nil {
		t.Fatal(err)
	}
	streamAppend(t, src, 2, g.Edges[40:])

	snap, err := src.LoadSnapshot()
	if err != nil || snap == nil {
		t.Fatalf("LoadSnapshot: %+v err=%v", snap, err)
	}

	dst, _, err := OpenStream(t.TempDir(), StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.InstallSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	// After the bootstrap, the compacted tail ships as normal records.
	recs, _, err := src.ReadRecords(snap.Seq+1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := dst.ApplyReplicated(r); err != nil {
			t.Fatalf("apply seq %d: %v", r.Seq, err)
		}
	}
	si, di := src.Info(), dst.Info()
	if di.Fingerprint != si.Fingerprint || di.Seq != si.Seq {
		t.Fatalf("bootstrap mirror info %+v != source %+v", di, si)
	}
	if board := dst.Standing(); len(board) != 1 || board[0].Name != "q" {
		t.Fatalf("standing board not carried by snapshot: %+v", board)
	}
	// A second install over the now non-empty log must refuse: that would
	// be silent divergence repair.
	if err := dst.InstallSnapshot(snap); err == nil {
		t.Fatal("InstallSnapshot over non-empty log must refuse")
	}
}
