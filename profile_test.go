package mint

import (
	"context"
	mrand "math/rand"
	"testing"
)

func TestProfileCountsAgainstDirectCount(t *testing.T) {
	g, err := Dataset("em", "", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	motifs := MotifLibrary(DeltaHour)
	prof := Profile(g, motifs, 2)
	if len(prof) != len(motifs) {
		t.Fatalf("profile length %d vs %d motifs", len(prof), len(motifs))
	}
	for i, mc := range prof {
		if mc.Motif != motifs[i] {
			t.Fatalf("profile order drifted at %d", i)
		}
		if want := Count(g, mc.Motif); mc.Count != want {
			t.Errorf("%s: profile count %d vs direct %d", mc.Motif.Name, mc.Count, want)
		}
		if mc.Count > 0 && mc.Density <= 0 {
			t.Errorf("%s: density %v with count %d", mc.Motif.Name, mc.Density, mc.Count)
		}
	}
}

func TestTopMotifsSorted(t *testing.T) {
	prof := []MotifCount{
		{Motif: M1(10), Density: 1},
		{Motif: M2(10), Density: 5},
		{Motif: M3(10), Density: 3},
	}
	top := TopMotifs(prof)
	if top[0].Density != 5 || top[1].Density != 3 || top[2].Density != 1 {
		t.Fatalf("not sorted: %v", top)
	}
	// Original untouched.
	if prof[0].Density != 1 {
		t.Fatal("TopMotifs mutated input")
	}
}

func TestFingerprintDistance(t *testing.T) {
	a := []MotifCount{{Motif: M1(10), Density: 1}, {Motif: M2(10), Density: 2}}
	b := []MotifCount{{Motif: M1(10), Density: 1}, {Motif: M2(10), Density: 2}}
	if d := FingerprintDistance(a, b); d != 0 {
		t.Fatalf("identical fingerprints: distance %v", d)
	}
	c := []MotifCount{{Motif: M1(10), Density: 9}, {Motif: M2(10), Density: 2}}
	if d := FingerprintDistance(a, c); d <= 0 {
		t.Fatalf("different fingerprints: distance %v", d)
	}
	mustPanicProfile(t, func() { FingerprintDistance(a, a[:1]) })
	mismatched := []MotifCount{{Motif: M2(10), Density: 1}, {Motif: M1(10), Density: 2}}
	mustPanicProfile(t, func() { FingerprintDistance(a, mismatched) })
}

func mustPanicProfile(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// TestFingerprintSeparatesTemporalBehavior: two graphs with identical
// static structure but different temporal clustering must be farther apart
// than two samples of the same behavior — the socialflow example's claim
// as a test.
func TestFingerprintSeparatesTemporalBehavior(t *testing.T) {
	bursty1 := buildBehaviorGraph(t, 1, true)
	bursty2 := buildBehaviorGraph(t, 2, true)
	uniform := buildBehaviorGraph(t, 3, false)
	motifs := MotifLibrary(DeltaHour)
	p1 := Profile(bursty1, motifs, 2)
	p2 := Profile(bursty2, motifs, 2)
	pu := Profile(uniform, motifs, 2)
	within := FingerprintDistance(p1, p2)
	across := FingerprintDistance(p1, pu)
	if across <= within {
		t.Errorf("fingerprint failed to separate behaviors: within=%v across=%v", within, across)
	}
}

func buildBehaviorGraph(t *testing.T, seed int64, bursty bool) *Graph {
	t.Helper()
	rng := newDeterministicRand(seed)
	const users, msgs = 60, 3000
	const span = 7 * 86_400
	var edges []Edge
	for i := 0; i < msgs; i++ {
		var ts Timestamp
		if bursty {
			w := rng.Intn(24)
			ts = Timestamp(w)*(span/24) + Timestamp(rng.Int63n(3600))
		} else {
			ts = Timestamp(rng.Int63n(span))
		}
		src := NodeID(rng.Intn(users))
		dst := NodeID(rng.Intn(users))
		if src == dst {
			dst = (dst + 1) % users
		}
		edges = append(edges, Edge{Src: src, Dst: dst, Time: ts})
	}
	g, err := NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newDeterministicRand isolates the test's randomness source.
func newDeterministicRand(seed int64) *mrand.Rand {
	return mrand.New(mrand.NewSource(seed))
}

func TestLocalCountsFig1(t *testing.T) {
	g, err := NewGraph([]Edge{
		{Src: 0, Dst: 1, Time: 5},
		{Src: 1, Dst: 2, Time: 10},
		{Src: 2, Dst: 0, Time: 20},
		{Src: 2, Dst: 3, Time: 25},
		{Src: 1, Dst: 2, Time: 30},
		{Src: 0, Dst: 1, Time: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := ParseMotif("cycle", 25, "A->B;B->C;C->A")
	counts := LocalCounts(g, m)
	// Exactly one match touching nodes 0, 1, 2 once each; node 3 untouched.
	want := []int64{1, 1, 1, 0}
	for u, w := range want {
		if counts[u] != w {
			t.Errorf("node %d: count %d, want %d", u, counts[u], w)
		}
	}
}

func TestLocalCountsSumConsistency(t *testing.T) {
	g, err := Dataset("em", "", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	m := M1(DeltaHour)
	total := Count(g, m)
	counts := LocalCounts(g, m)
	var sum int64
	for _, c := range counts {
		sum += c
	}
	// Each M1 occurrence touches exactly 3 distinct nodes.
	if sum != 3*total {
		t.Fatalf("local counts sum %d, want 3×%d", sum, total)
	}
}

// TestProfileCtxBudgetTruncation: a tiny node budget must mark every
// nontrivial motif truncated while keeping counts as exact lower bounds,
// and the unbudgeted profile must stay untruncated.
func TestProfileCtxBudgetTruncation(t *testing.T) {
	g, err := Dataset("em", "", 0.01)
	if err != nil {
		t.Fatal(err)
	}
	motifs := MotifLibrary(DeltaHour)
	full, err := ProfileCtx(context.Background(), g, motifs, 2, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range full {
		if mc.Truncated {
			t.Fatalf("%s: unbudgeted profile truncated (%v)", mc.Motif.Name, mc.StopReason)
		}
	}

	tiny, err := ProfileCtx(context.Background(), g, motifs, 2, Budget{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	truncatedAny := false
	for i, mc := range tiny {
		if mc.Truncated {
			truncatedAny = true
			if mc.StopReason != StopNodeBudget {
				t.Errorf("%s: stop reason %v, want node budget", mc.Motif.Name, mc.StopReason)
			}
		}
		if mc.Count > full[i].Count {
			t.Errorf("%s: truncated count %d exceeds full count %d", mc.Motif.Name, mc.Count, full[i].Count)
		}
	}
	if !truncatedAny {
		t.Fatal("MaxNodes=1 truncated nothing")
	}

	// A dead context truncates every motif without erroring.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead, err := ProfileCtx(ctx, g, motifs, 2, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range dead {
		if !mc.Truncated || mc.StopReason != StopCanceled {
			t.Errorf("%s: dead-context run not marked canceled: %+v", mc.Motif.Name, mc)
		}
	}
}

// TestProfileSharedBudget pins the co-mined profile's budget model: ONE
// budget governs the whole fingerprint. The motif set spans two δ-groups;
// a MaxNodes cap small enough to die inside the first group must leave the
// second group truncated too (it never gets a fresh budget of its own —
// the pre-co-mining profiler would have completed it).
func TestProfileSharedBudget(t *testing.T) {
	g, err := Dataset("em", "", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	motifs := []*Motif{M1(DeltaHour), M2(DeltaHour), M1(DeltaHour / 2)}
	full, err := ProfileCtx(context.Background(), g, motifs, 2, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range full {
		if mc.Count == 0 {
			t.Skip("dataset slice too sparse to exercise the budget split")
		}
	}

	capped, err := ProfileCtx(context.Background(), g, motifs, 2, Budget{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, mc := range capped {
		if !mc.Truncated {
			t.Errorf("%s (δ=%d): completed under a shared MaxNodes=1 budget — budget looks per-motif",
				mc.Motif.Name, mc.Motif.Delta)
		}
		if mc.StopReason != StopNodeBudget {
			t.Errorf("%s: stop reason %v, want node budget", mc.Motif.Name, mc.StopReason)
		}
		if mc.Count > full[i].Count {
			t.Errorf("%s: capped count %d exceeds full %d", mc.Motif.Name, mc.Count, full[i].Count)
		}
	}
	// The second δ-group never ran: its count must be zero, not a fresh
	// full mine.
	if got := capped[2].Count; got == full[2].Count && got > 0 {
		t.Errorf("second δ-group counted %d matches after the shared budget died — it ran on its own budget", got)
	}
}

// TestCountManyMatchesSingleRuns: the public batch API returns counts
// bit-identical to independent single-motif runs, with the co-mining
// shape surfaced.
func TestCountManyMatchesSingleRuns(t *testing.T) {
	g, err := Dataset("em", "", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	motifs := EvaluationMotifs(DeltaHour)
	res, err := CountManyCtx(context.Background(), g, motifs, 2, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerMotif) != len(motifs) {
		t.Fatalf("PerMotif length %d vs %d motifs", len(res.PerMotif), len(motifs))
	}
	for i, pm := range res.PerMotif {
		if want := Count(g, motifs[i]); pm.Matches != want {
			t.Errorf("%s: batch count %d vs direct %d", motifs[i].Name, pm.Matches, want)
		}
		if pm.Truncated {
			t.Errorf("%s: unbudgeted batch truncated", motifs[i].Name)
		}
	}
	if res.Groups != 1 {
		t.Errorf("M1-M4 share δ: got %d groups, want 1", res.Groups)
	}
	if res.SharedExpansions == 0 {
		t.Error("co-mined M1-M4 reported zero shared expansions")
	}
}
